// Package experiments regenerates every figure and evaluation claim of the
// paper and compares it against this reproduction's measurements. Each
// experiment corresponds to a row of the per-experiment index in DESIGN.md
// (F1-F12 for the figures, T1-T4 for the systems-level tables) and is
// exercised both by the lrexperiments CLI and by the test suite.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
	"paramring/internal/sim"
	"paramring/internal/synthesis"
	"paramring/internal/trace"
)

// maxStatesOverride, when non-zero, replaces the per-experiment explicit
// state-count guards (set via SetMaxStates from lrexperiments -max-states).
var maxStatesOverride uint64

// SetMaxStates overrides the explicit-engine state-count guard used by the
// state-space experiments (T1, X8). n = 0 restores the per-experiment
// defaults. The guard only bounds instance size — with the packed bitset
// substrate the engine's default ceiling is 1<<28 states, so raising the
// experiment guards toward it trades wall-clock for larger-K rows.
func SetMaxStates(n uint64) { maxStatesOverride = n }

// stateLimit resolves an experiment's default guard against the override.
func stateLimit(def uint64) uint64 {
	if maxStatesOverride > 0 {
		return maxStatesOverride
	}
	return def
}

// synthesisWorkers, when > 1, parallelizes the synthesis search in the
// Section 6 experiments (set via SetSynthesisWorkers from lrexperiments
// -synth-workers). The engine's deterministic first-accept rule makes every
// experiment's output identical for any worker count.
var synthesisWorkers int

// SetSynthesisWorkers sets the worker count the synthesis experiments pass
// to synthesis.Synthesize. n <= 1 searches sequentially.
func SetSynthesisWorkers(n int) { synthesisWorkers = n }

// synthOptions applies the worker override to an experiment's options.
func synthOptions(opts synthesis.Options) synthesis.Options {
	if synthesisWorkers > 1 {
		opts.Workers = synthesisWorkers
	}
	return opts
}

// Outcome is the verdict of one experiment.
type Outcome struct {
	// Measured is a one-line summary of what this reproduction observed.
	Measured string
	// Match reports agreement with the paper's claim.
	Match bool
	// Note carries deviations or refinements relative to the paper.
	Note string
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	// Paper states what the paper claims/reports for this artifact.
	Paper string
	// Run executes the experiment, writing details to w.
	Run func(w io.Writer) (Outcome, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		figure1(), figure2(), figure3(), figure4(), figure5(), figure6(),
		figure7(), figure8(), figure9(), figure10(), figure11(), figure12(),
		tableCost(), tableModelChecking(), tableLemmas(), tableGeneralization(),
	}
}

// ByID returns the experiment (paper or extension) with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range AllWithExtensions() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

func figure1() Experiment {
	return Experiment{
		ID:    "F1",
		Title: "RCG over all local states of maximal matching",
		Paper: "27 local states; each has one right continuation per domain value (Figure 1)",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.MatchingStateSpace()
			r := rcg.Build(p.Compile())
			n, m := r.Graph().N(), r.Graph().M()
			outDegOK := true
			for v := 0; v < n; v++ {
				if r.Graph().OutDegree(v) != 3 {
					outDegOK = false
				}
			}
			fmt.Fprintf(w, "vertices=%d s-arcs=%d uniform-out-degree-3=%v\n", n, m, outDegOK)
			fmt.Fprintf(w, "render with: lrviz -protocol matching -graph rcg\n")
			return Outcome{
				Measured: fmt.Sprintf("27 local states, 81 s-arcs, out-degree 3 everywhere"),
				Match:    n == 27 && m == 81 && outDegOK,
			}, nil
		},
	}
}

func figure2() Experiment {
	return Experiment{
		ID:    "F2",
		Title: "Example 4.2 (matching A): deadlock-free for every K by Theorem 4.2",
		Paper: "RCG induced over local deadlocks has no cycle through an illegitimate state",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.MatchingA()
			r := rcg.Build(p.Compile())
			rep, err := r.CheckDeadlockFreedom(0)
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "local deadlocks=%d illegitimate=%d verdict free=%v\n",
				len(rep.LocalDeadlocks), len(rep.IllegitimateDeadlocks), rep.Free)
			return Outcome{
				Measured: fmt.Sprintf("%d local deadlocks, no illegitimate deadlock cycle (free=%v)", len(rep.LocalDeadlocks), rep.Free),
				Match:    rep.Free,
			}, nil
		},
	}
}

func figure3() Experiment {
	return Experiment{
		ID:    "F3",
		Title: "Example 4.3 (matching B): illegitimate deadlock cycles and affected ring sizes",
		Paper: "two cycles (length 4 and 6) through <left,left,self>; deadlocks on multiples of 4 or 6; resolving lls repairs",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.MatchingB()
			r := rcg.Build(p.Compile())
			rep, err := r.CheckDeadlockFreedom(0)
			if err != nil {
				return Outcome{}, err
			}
			lens := rep.SortedBadCycleLengths()
			for _, c := range rep.BadCycles {
				fmt.Fprintf(w, "cycle len %d: %s\n", len(c), r.FormatCycle(c))
			}
			// Predicted vs explicit per ring size.
			tb := trace.NewTable("K", "RCG predicts deadlock", "explicit finds deadlock", "agree")
			agree := true
			predicted := r.DeadlockRingSizes(2, 9)
			for k := 2; k <= 9; k++ {
				in, err := explicit.NewInstance(p, k)
				if err != nil {
					return Outcome{}, err
				}
				actual := len(in.IllegitimateDeadlocks()) > 0
				if predicted[k] != actual {
					agree = false
				}
				tb.AddRow(k, predicted[k], actual, predicted[k] == actual)
			}
			fmt.Fprint(w, tb.String())
			// Repair.
			repaired := p.WithActions("matchingB+fix", core.Action{
				Name: "FixLLS",
				Guard: func(v core.View) bool {
					return v[0] == protocols.MatchLeft && v[1] == protocols.MatchLeft && v[2] == protocols.MatchSelf
				},
				Next: func(v core.View) []int { return []int{protocols.MatchSelf} },
			})
			fixRep, err := rcg.Build(repaired.Compile()).CheckDeadlockFreedom(0)
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "after resolving lls: free=%v\n", fixRep.Free)
			match := len(lens) == 2 && lens[0] == 4 && lens[1] == 6 && agree && fixRep.Free
			return Outcome{
				Measured: fmt.Sprintf("elementary cycle lengths %v through lls; per-K predictions agree with explicit search; repair works", lens),
				Match:    match,
				Note:     "refinement: composite closed walks also deadlock K=7,8,9,... — the paper's \"multiples of 4 or 6\" counts only the two elementary cycles; Theorem 4.2's walk semantics (validated above) covers all sizes",
			}, nil
		},
	}
}

func figure4() Experiment {
	return Experiment{
		ID:    "F4",
		Title: "LTG of Example 4.2",
		Paper: "local transition graph: continuation s-arcs plus local-transition t-arcs",
		Run: func(w io.Writer) (Outcome, error) {
			l := ltg.Build(protocols.MatchingA().Compile())
			fmt.Fprintf(w, "vertices=%d s-arcs=%d t-arcs=%d\n",
				l.SArcs().N(), l.SArcs().M(), len(l.TArcs()))
			fmt.Fprintf(w, "render with: lrviz -protocol matchingA -graph ltg\n")
			return Outcome{
				Measured: fmt.Sprintf("27 vertices, 81 s-arcs, %d t-arcs", len(l.TArcs())),
				Match:    l.SArcs().N() == 27 && l.SArcs().M() == 81 && len(l.TArcs()) > 0,
			}, nil
		},
	}
}

func figure5() Experiment {
	return Experiment{
		ID:    "F5",
		Title: "Precedence relation of the K=4 agreement livelock",
		Paper: "three independent pairs of local transitions => 8 = 2^3 precedence-preserving permutations",
		Run: func(w io.Writer) (Outcome, error) {
			procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
			dag := ltg.DependencyDAG(4, procs)
			pairs := ltg.IndependentPairs(dag)
			exts, err := ltg.LinearExtensions(dag, 0)
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "schedule processes: %v\n", procs)
			fmt.Fprintf(w, "independent pairs: %v\n", pairs)
			fmt.Fprintf(w, "precedence Hasse diagram (Figure 5's drawing): %v\n",
				dag.TransitiveReduction().Edges())
			fmt.Fprintf(w, "precedence-preserving permutations: %d\n", len(exts))
			return Outcome{
				Measured: fmt.Sprintf("%d independent pairs, %d permutations", len(pairs), len(exts)),
				Match:    len(pairs) == 3 && len(exts) == 8,
			}, nil
		},
	}
}

func figure6() Experiment {
	return Experiment{
		ID:    "F6",
		Title: "Every precedence-preserving permutation is a livelock (Lemma 5.11)",
		Paper: "two permutations shown as livelocks; the lemma covers all of them",
		Run: func(w io.Writer) (Outcome, error) {
			in, err := explicit.NewInstance(protocols.AgreementBoth(), 4)
			if err != nil {
				return Outcome{}, err
			}
			start := in.Encode([]int{1, 0, 0, 0})
			procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
			dag := ltg.DependencyDAG(4, procs)
			exts, err := ltg.LinearExtensions(dag, 0)
			if err != nil {
				return Outcome{}, err
			}
			okAll := true
			for _, perm := range exts {
				sched := ltg.PermuteSchedule(procs, perm)
				states, err := in.Computation(start, sched)
				ok := err == nil && states[len(states)-1] == start && in.IsLivelock(states[:len(states)-1])
				if !ok {
					okAll = false
				}
				comp := trace.Computation{In: in, States: states, Procs: sched}
				fmt.Fprintf(w, "perm %v livelock=%v: %s\n", perm, ok, comp.String())
			}
			return Outcome{
				Measured: fmt.Sprintf("all %d permutations verified as livelocks", len(exts)),
				Match:    okAll,
			}, nil
		},
	}
}

func figure7() Experiment {
	return Experiment{
		ID:    "F7",
		Title: "Contiguous livelock rotation (K=6, |E|=3)",
		Paper: "the rightmost enablement propagates; after K-|E| steps the segment re-forms, rotated; K repetitions rotate fully",
		Run: func(w io.Writer) (Outcome, error) {
			enc := func(a, b int) core.LocalState { return core.Encode(core.View{a, b}, 3) }
			p, err := core.NewFromTable(core.Config{
				Name: "coloring3+cyc", Domain: 3, Lo: -1, Hi: 0,
				Legit: func(v core.View) bool { return v[0] != v[1] },
			}, []core.TableAction{
				{Name: "t01", Moves: map[core.LocalState][]int{enc(0, 0): {1}}},
				{Name: "t12", Moves: map[core.LocalState][]int{enc(1, 1): {2}}},
				{Name: "t20", Moves: map[core.LocalState][]int{enc(2, 2): {0}}},
			})
			if err != nil {
				return Outcome{}, err
			}
			in, err := explicit.NewInstance(p, 6)
			if err != nil {
				return Outcome{}, err
			}
			rng := rand.New(rand.NewSource(7))
			start := in.Encode([]int{0, 0, 0, 0, 1, 2})
			steps, closed, err := sim.ContiguousRotation(in, start, 1000, rng)
			if err != nil {
				return Outcome{}, err
			}
			constE := true
			contiguousAtReform := true
			for i, s := range steps {
				if len(s.Enabled) != 3 {
					constE = false
				}
				if i%3 == 0 && !sim.IsContiguousSegment(6, s.Enabled) {
					contiguousAtReform = false
				}
				if i < 8 {
					fmt.Fprintf(w, "step %2d state=%s enabled=%v\n", i, in.Format(s.State), s.Enabled)
				}
			}
			fmt.Fprintf(w, "... run length %d, cycle closed=%v\n", len(steps)-1, closed)
			return Outcome{
				Measured: fmt.Sprintf("|E| constant at 3, segment re-forms every K-|E|=3 steps, cycle closes after %d steps", len(steps)-1),
				Match:    closed && constE && contiguousAtReform,
			}, nil
		},
	}
}

func figure8() Experiment {
	return Experiment{
		ID:    "F8",
		Title: "Gouda-Acharya matching fragment: livelock at K=5 forms a contiguous trail",
		Paper: "livelock <lslsl, sslsl, ...> with one enablement; 10-arc alternating trail in the LTG",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.GoudaAcharya()
			rep, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{})
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "Theorem 5.14 verdict: %v (%s)\n", rep.Verdict, rep.Reason)
			in, err := explicit.NewInstance(p, 5)
			if err != nil {
				return Outcome{}, err
			}
			names := []string{"lslsl", "sslsl", "sllsl", "slssl", "slsll", "slsls", "llsls", "lssls", "lslls", "lslss"}
			cycle := make([]uint64, len(names))
			for i, s := range names {
				vals := make([]int, len(s))
				for j, ch := range s {
					switch ch {
					case 'l':
						vals[j] = protocols.MatchLeft
					case 's':
						vals[j] = protocols.MatchSelf
					}
				}
				cycle[i] = in.Encode(vals)
			}
			paperCycleOK := in.IsLivelock(cycle)
			fmt.Fprintf(w, "paper's 10-state K=5 cycle verified as livelock: %v\n", paperCycleOK)
			enabledCounts := map[int]bool{}
			for _, s := range cycle {
				enabledCounts[len(in.EnabledProcesses(s))] = true
			}
			fmt.Fprintf(w, "enablement count along the livelock: %v (|E| = 1)\n", keysOf(enabledCounts))
			return Outcome{
				Measured: fmt.Sprintf("potential-livelock verdict with t-arcs {t_ls,t_sl}; paper's K=5 cycle is a real livelock with |E|=1"),
				Match:    rep.Verdict == ltg.VerdictPotentialLivelock && paperCycleOK && len(enabledCounts) == 1 && enabledCounts[1],
			}, nil
		},
	}
}

func figure9() Experiment {
	return Experiment{
		ID:    "F9",
		Title: "3-coloring synthesis declares failure",
		Paper: "Resolve = {00,11,22}; 2^3 = 8 candidate sets; every one forms a pseudo-livelock in a contiguous trail",
		Run: func(w io.Writer) (Outcome, error) {
			res, err := synthesis.Synthesize(protocols.Coloring(3), synthOptions(synthesis.Options{All: true}))
			for _, s := range res.Steps {
				fmt.Fprintln(w, s)
			}
			failed := err != nil && len(res.Accepted) == 0
			return Outcome{
				Measured: fmt.Sprintf("Resolve={00,11,22}, 8 candidate sets, %d rejections, failure declared", len(res.Rejections)),
				Match:    failed && len(res.Rejections) == 8 && len(res.ResolveSets) == 1,
			}, nil
		},
	}
}

func figure10() Experiment {
	return Experiment{
		ID:    "F10",
		Title: "Agreement synthesis: one-sided correction converges for every K",
		Paper: "Resolve={01} or {10}; include t01 xor t10; both-sided fails the sufficient condition",
		Run: func(w io.Writer) (Outcome, error) {
			res, err := synthesis.Synthesize(protocols.AgreementBase(), synthOptions(synthesis.Options{All: true}))
			if err != nil {
				return Outcome{}, err
			}
			for _, s := range res.Steps {
				fmt.Fprintln(w, s)
			}
			// Both-sided check.
			bothRep, err := ltg.CheckLivelockFreedom(protocols.AgreementBoth(), ltg.CheckOptions{})
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "both-sided verdict: %v\n", bothRep.Verdict)
			// Cross-validate the first solution for K=2..10.
			allConverge := true
			for k := 2; k <= 10; k++ {
				in, err := explicit.NewInstance(res.Best().Protocol, k)
				if err != nil {
					return Outcome{}, err
				}
				if !in.CheckStrongConvergence().Converges {
					allConverge = false
				}
			}
			fmt.Fprintf(w, "synthesized protocol converges for K=2..10: %v\n", allConverge)
			return Outcome{
				Measured: fmt.Sprintf("%d one-sided solutions (NPL); both-sided = %v; explicit convergence K=2..10", len(res.Accepted), bothRep.Verdict),
				Match: len(res.Accepted) == 2 && allConverge &&
					bothRep.Verdict == ltg.VerdictPotentialLivelock,
			}, nil
		},
	}
}

func figure11() Experiment {
	return Experiment{
		ID:    "F11",
		Title: "2-coloring synthesis cannot conclude (and SS 2-coloring is impossible)",
		Paper: "both illegitimate deadlocks must be resolved; the resolution forms a trail; failure declared",
		Run: func(w io.Writer) (Outcome, error) {
			res, err := synthesis.Synthesize(protocols.Coloring(2), synthOptions(synthesis.Options{All: true}))
			for _, s := range res.Steps {
				fmt.Fprintln(w, s)
			}
			failed := err != nil && len(res.Accepted) == 0
			// The failure is real here: the only candidate set livelocks.
			pss, err2 := synthesis.Apply(protocols.Coloring(2), res.Rejections[0].Chosen, "conv")
			if err2 != nil {
				return Outcome{}, err2
			}
			in, err2 := explicit.NewInstance(pss, 4)
			if err2 != nil {
				return Outcome{}, err2
			}
			real := in.FindLivelock() != nil
			fmt.Fprintf(w, "the rejected candidate really livelocks at K=4: %v\n", real)
			return Outcome{
				Measured: fmt.Sprintf("Resolve={00,11}; single candidate set rejected; real livelock at K=4: %v", real),
				Match:    failed && real && len(res.ResolveSets) == 1 && len(res.ResolveSets[0]) == 2,
			}, nil
		},
	}
}

func figure12() Experiment {
	return Experiment{
		ID:    "F12",
		Title: "Sum-not-two: accepted and rejected candidate sets; spurious trails",
		Paper: "{t21,t10,t02} and {t01,t12,t20} rejected (pseudo-livelock + trail; the former's trail is spurious); {t21,t12,t01} accepted and converging",
		Run: func(w io.Writer) (Outcome, error) {
			base := protocols.SumNotTwoBase()
			res, err := synthesis.Synthesize(base, synthOptions(synthesis.Options{All: true}))
			if err != nil {
				return Outcome{}, err
			}
			for _, s := range res.Steps {
				fmt.Fprintln(w, s)
			}
			sys := base.Compile()
			accepted := map[string]bool{}
			for _, c := range res.Accepted {
				accepted[ltg.FormatTArcs(sys, c.Chosen)] = true
			}
			rejected := map[string]bool{}
			for _, r := range res.Rejections {
				rejected[ltg.FormatTArcs(sys, r.Chosen)] = true
			}
			// Paper's accepted set {t21,t12,t01} in window notation.
			paperAccepted := "{conv:20->21, conv:11->12, conv:02->01}"
			paperRejected1 := "{conv:20->22, conv:11->10, conv:02->01}" // {t02,t10,t21}
			paperRejected2 := "{conv:20->21, conv:11->12, conv:02->00}" // {t01,t12,t20}
			// Classify each rejection by explicit search: the paper's two
			// rejected triples have only SPURIOUS trails (no livelock at any
			// K we can check); the two sets containing both t02 and t20 have
			// REAL livelocks at K=3 — sets the paper's blanket "none of the
			// remaining..." statement would wrongly accept.
			spuriousCnt, realCnt := 0, 0
			for _, r := range res.Rejections {
				pss, err := synthesis.Apply(base, r.Chosen, "conv")
				if err != nil {
					return Outcome{}, err
				}
				real := false
				for k := 3; k <= 5; k++ {
					in, err := explicit.NewInstance(pss, k)
					if err != nil {
						return Outcome{}, err
					}
					if c := in.FindLivelock(); c != nil {
						real = true
						fmt.Fprintf(w, "rejected %s: REAL livelock at K=%d: %s\n",
							ltg.FormatTArcs(sys, r.Chosen), k, in.FormatCycle(c))
						break
					}
				}
				if real {
					realCnt++
				} else {
					spuriousCnt++
					fmt.Fprintf(w, "rejected %s: trail is spurious (no livelock K=3..5)\n",
						ltg.FormatTArcs(sys, r.Chosen))
				}
			}
			fmt.Fprintf(w, "accepted sets: %d, rejected: %d (%d real livelocks, %d spurious trails)\n",
				len(res.Accepted), len(res.Rejections), realCnt, spuriousCnt)
			match := accepted[paperAccepted] && rejected[paperRejected1] && rejected[paperRejected2] &&
				spuriousCnt == 2 && realCnt == 2
			return Outcome{
				Measured: "paper's accepted set accepted; both paper-rejected triples rejected and confirmed spurious; 2 further sets rejected with REAL K=3 livelocks",
				Match:    match,
				Note:     "paper erratum: the claim that none of the remaining 6 candidate sets forms a pseudo-livelocking trail is wrong — {t02,t10,t20} and {t02,t12,t20} livelock at K=3 (<200,220,020,022,002,202>); our checker rejects them, the paper's statement would accept them",
			}, nil
		},
	}
}

func tableCost() Experiment {
	return Experiment{
		ID:    "T1",
		Title: "Local reasoning vs global state exploration cost",
		Paper: "\"a significant improvement in the time/space complexity\" — local work is constant in K, global is domain^K",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.SumNotTwoSolution()
			// Local: one Theorem 4.2 + Theorem 5.14 run covers ALL K.
			t0 := time.Now()
			r := rcg.Build(p.Compile())
			dlRep, err := r.CheckDeadlockFreedom(0)
			if err != nil {
				return Outcome{}, err
			}
			llRep, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{})
			if err != nil {
				return Outcome{}, err
			}
			localTime := time.Since(t0)
			workers := runtime.GOMAXPROCS(0)
			fmt.Fprintf(w, "local: deadlock-free=%v livelock=%v states=9 time=%v (covers every K)\n",
				dlRep.Free, llRep.Verdict, localTime)
			tb := trace.NewTable("K", "global states", "global seq", fmt.Sprintf("global par (%dw)", workers),
				"par speedup", "local/global speedup")
			monotone := true
			var prev time.Duration
			for _, k := range []int{4, 6, 8, 10, 12} {
				seqIn, err := explicit.NewInstance(p, k, explicit.WithMaxStates(stateLimit(1<<24)), explicit.WithWorkers(1))
				if err != nil {
					return Outcome{}, err
				}
				g0 := time.Now()
				rep := seqIn.CheckStrongConvergenceSeq()
				gTime := time.Since(g0)
				if !rep.Converges {
					return Outcome{}, fmt.Errorf("unexpected non-convergence at K=%d", k)
				}
				parIn, err := explicit.NewInstance(p, k, explicit.WithMaxStates(stateLimit(1<<24)))
				if err != nil {
					return Outcome{}, err
				}
				p0 := time.Now()
				prep := parIn.CheckStrongConvergence()
				pTime := time.Since(p0)
				if prep.Converges != rep.Converges {
					return Outcome{}, fmt.Errorf("parallel verdict diverged at K=%d", k)
				}
				speed := float64(gTime) / float64(localTime)
				// Match depends on the sequential times only: on a single-core
				// box the parallel column is informational.
				tb.AddRow(k, rep.StatesExplored, gTime.Round(time.Microsecond),
					pTime.Round(time.Microsecond),
					fmt.Sprintf("%.2fx", float64(gTime)/float64(pTime)),
					fmt.Sprintf("%.1fx", speed))
				if gTime < prev {
					monotone = false
				}
				prev = gTime
			}
			fmt.Fprint(w, tb.String())
			return Outcome{
				Measured: "local check is one constant-size analysis valid for all K; global cost grows as 3^K (exponential sweep shown, sequential vs parallel engine)",
				Match:    dlRep.Free && llRep.Verdict == ltg.VerdictFree && monotone,
			}, nil
		},
	}
}

func tableModelChecking() Experiment {
	return Experiment{
		ID:    "T2",
		Title: "Example 4.2 model-checked for 5,6,7,8 processes",
		Paper: "\"We model-checked this protocol for different sizes of ring (5,6,7 and 8 processes) and demonstrated its deadlock freedom\"",
		Run: func(w io.Writer) (Outcome, error) {
			ok := true
			tb := trace.NewTable("K", "illegitimate deadlocks", "strongly converges")
			for _, k := range []int{5, 6, 7, 8} {
				in, err := explicit.NewInstance(protocols.MatchingA(), k)
				if err != nil {
					return Outcome{}, err
				}
				dl := len(in.IllegitimateDeadlocks())
				conv := in.CheckStrongConvergence().Converges
				tb.AddRow(k, dl, conv)
				if dl != 0 || !conv {
					ok = false
				}
			}
			fmt.Fprint(w, tb.String())
			return Outcome{
				Measured: "0 illegitimate deadlocks and full strong convergence for K=5,6,7,8",
				Match:    ok,
			}, nil
		},
	}
}

func tableLemmas() Experiment {
	return Experiment{
		ID:    "T3",
		Title: "Section 5 lemmas validated under simulation",
		Paper: "enablement conservation (5.5), collisions decrease |E| (5.6), no continuously enabled process in livelocks (5.7)",
		Run: func(w io.Writer) (Outcome, error) {
			rng := rand.New(rand.NewSource(42))
			in, err := explicit.NewInstance(protocols.AgreementBoth(), 6)
			if err != nil {
				return Outcome{}, err
			}
			nonIncreasing := true
			for trial := 0; trial < 200; trial++ {
				res := sim.Run(in, sim.RandomState(in, rng), sim.Random{}, rng,
					sim.Options{MaxSteps: 100, ContinueInsideI: true})
				for i := 1; i < len(res.EnabledCounts); i++ {
					if res.EnabledCounts[i] > res.EnabledCounts[i-1] {
						nonIncreasing = false
					}
				}
			}
			fmt.Fprintf(w, "200 random runs (K=6 agreement-both): |E| never increased: %v\n", nonIncreasing)
			st := sim.ConvergenceStats(in, func() sim.Scheduler { return sim.Random{} }, 200, 5000, rng)
			fmt.Fprintf(w, "random daemon: %d/%d runs converged (livelocks are scheduler-dependent), max |E| seen %d\n",
				st.Converged, st.Trials, st.MaxEnabled)
			return Outcome{
				Measured: "enablement conservation holds in all 200 sampled computations",
				Match:    nonIncreasing,
			}, nil
		},
	}
}

func tableGeneralization() Experiment {
	return Experiment{
		ID:    "T4",
		Title: "Global synthesis is not generalizable; local synthesis is",
		Paper: "STSyn-style output carries no guarantee beyond its K (Example 4.3 stabilizes for 5 but not 6)",
		Run: func(w io.Writer) (Outcome, error) {
			res, err := explicit.SynthesizeGlobal(protocols.Coloring(3), 3, 0)
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "global synthesis of 3-coloring at K=3 chose %s (%d candidates tried, %d states explored)\n",
				ltg.FormatTArcs(protocols.Coloring(3).Compile(), res.Chosen), res.CandidatesTried, res.StatesExplored)
			conv3 := explicit.MustNewInstance(res.Protocol, 3).CheckStrongConvergence().Converges
			fail4 := !explicit.MustNewInstance(res.Protocol, 4).CheckStrongConvergence().Converges
			fmt.Fprintf(w, "converges at K=3: %v; fails at K=4: %v\n", conv3, fail4)
			_, lerr := synthesis.Synthesize(protocols.Coloring(3), synthOptions(synthesis.Options{}))
			localFails := lerr != nil
			fmt.Fprintf(w, "local methodology on the same input declares failure (correct for all K): %v\n", localFails)
			// And matching B vs A is the paper's own instance of the story.
			b5 := explicit.MustNewInstance(protocols.MatchingB(), 5).CheckStrongConvergence().Converges
			b6 := explicit.MustNewInstance(protocols.MatchingB(), 6).CheckStrongConvergence().Converges
			fmt.Fprintf(w, "matchingB (STSyn output): stabilizes K=5: %v, K=6: %v\n", b5, b6)
			return Outcome{
				Measured: "global K=3 solution for 3-coloring fails at K=4; local method declares failure instead; matchingB stabilizes at 5 but not 6",
				Match:    conv3 && fail4 && localFails && b5 && !b6,
			}, nil
		},
	}
}

func keysOf(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
