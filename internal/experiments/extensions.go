package experiments

import (
	"fmt"
	"io"
	"sort"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
	"paramring/internal/synthesis"
	"paramring/internal/trace"
	"paramring/internal/tree"
	"paramring/internal/verify"
)

// ltgCheck wraps the livelock checker, returning whether the protocol is
// (contiguous-)livelock-free.
func ltgCheck(p *core.Protocol) (bool, error) {
	rep, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{})
	if err != nil {
		return false, err
	}
	return rep.Verdict == ltg.VerdictFree, nil
}

// Extensions returns the experiments that go beyond the paper's artifacts:
// its future-work items and systems-level analyses this reproduction adds.
func Extensions() []Experiment {
	return []Experiment{extTree(), extCutoff(), extRecoveryRadius(), extMIS(), extCounting(), extFairness(), extSymmetry(), extParallel(), extLaneAgreement()}
}

// AllWithExtensions returns the paper experiments followed by extensions.
func AllWithExtensions() []Experiment {
	return append(All(), Extensions()...)
}

func extTree() Experiment {
	return Experiment{
		ID:    "X1",
		Title: "Tree topology extension (paper future work, Section 8)",
		Paper: "future work: \"local reasoning for global convergence of parameterized protocols with topologies other than rings (e.g., tree...)\"",
		Run: func(w io.Writer) (Outcome, error) {
			// 2-coloring: impossible on unidirectional rings (Figure 11),
			// stabilizing on ALL trees by the acyclic continuation analysis.
			rep := core.MustNew(core.Config{
				Name:   "tree-coloring",
				Domain: 2,
				Lo:     -1,
				Hi:     0,
				Actions: []core.Action{{
					Name:  "bump",
					Guard: func(v core.View) bool { return v[0] == v[1] },
					Next:  func(v core.View) []int { return []int{1 - v[1]} },
				}},
				Legit: func(v core.View) bool { return v[0] != v[1] },
			})
			spec := &tree.Spec{Rep: rep, RootLegit: func(int) bool { return true }}
			ok, dl, err := spec.StabilizingForAllTrees()
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "tree 2-coloring: deadlock-free over all trees=%v, self-disabling (hence livelock-free)=%v\n",
				dl.Free, ok)
			// Cross-validate on chains.
			chainsOK := true
			for n := 1; n <= 6; n++ {
				c, err := tree.NewChain(spec, n)
				if err != nil {
					return Outcome{}, err
				}
				conv := c.StronglyConverges()
				fmt.Fprintf(w, "  chain n=%d: strongly converges=%v\n", n, conv)
				if !conv {
					chainsOK = false
				}
			}
			return Outcome{
				Measured: "2-coloring — impossible on unidirectional rings — is proved stabilizing on ALL rooted trees by the continuation-relation analysis (reachability instead of cycles) and validated on chains n=1..6",
				Match:    ok && chainsOK,
				Note:     "extension artifact: not a paper figure; implements the Section 8 future-work direction",
			}, nil
		},
	}
}

func extCutoff() Experiment {
	return Experiment{
		ID:    "X2",
		Title: "Small-K (cutoff-style) verification misleads; local reasoning does not",
		Paper: "Section 7 discusses cutoff methods [28-31]; the paper's method needs no cutoff and catches size-dependent bugs",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.MatchingB()
			// Per-K verdicts are NON-MONOTONE: matching B fails at K=4
			// (multiple of 4), passes at its design size K=5, fails again at
			// K=6 — so no finite sample of ring sizes generalizes, and a
			// team that verified only the deployment size K=5 would ship a
			// protocol that deadlocks when the ring grows or shrinks.
			verdicts := map[int]bool{}
			tb := trace.NewTable("K", "strongly converges")
			for k := 3; k <= 6; k++ {
				in, err := explicit.NewInstance(p, k)
				if err != nil {
					return Outcome{}, err
				}
				verdicts[k] = in.CheckStrongConvergence().Converges
				tb.AddRow(k, verdicts[k])
			}
			fmt.Fprint(w, tb.String())
			rep, err := rcg.Build(p.Compile()).CheckDeadlockFreedom(0)
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "Theorem 4.2 local verdict (all K at once): free=%v, %d illegitimate cycles found\n",
				rep.Free, len(rep.BadCycles))
			return Outcome{
				Measured: "per-K verdicts are non-monotone (fails K=4, passes K=5, fails K=6); the RCG check settles all K at once",
				Match:    !verdicts[4] && verdicts[5] && !verdicts[6] && !rep.Free,
				Note:     "extension artifact: quantifies the Section 7 discussion of cutoff-style verification",
			}, nil
		},
	}
}

func extMIS() Experiment {
	return Experiment{
		ID:    "X4",
		Title: "New case study: maximal independent set on a bidirectional ring",
		Paper: "(not in the paper — demonstrates the pipeline on a fresh protocol)",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.MaxIndependentSet()
			dl, err := rcg.Build(p.Compile()).CheckDeadlockFreedom(0)
			if err != nil {
				return Outcome{}, err
			}
			ll, err := ltgCheck(p)
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "Theorem 4.2: deadlock-free for every K: %v\n", dl.Free)
			fmt.Fprintf(w, "Theorem 5.14 (contiguous livelocks, bidirectional): %v\n", ll)
			ok := dl.Free && ll
			for k := 2; k <= 8; k++ {
				in, err := explicit.NewInstance(p, k)
				if err != nil {
					return Outcome{}, err
				}
				conv := in.CheckStrongConvergence().Converges
				fmt.Fprintf(w, "explicit K=%d: converges=%v\n", k, conv)
				ok = ok && conv
			}
			return Outcome{
				Measured: "MIS is deadlock-free for every K (the only illegitimate local deadlock lies on no RCG cycle), contiguous-livelock-free, and explicitly convergent K=2..8",
				Match:    ok,
				Note:     "extension artifact",
			}, nil
		},
	}
}

func extRecoveryRadius() Experiment {
	return Experiment{
		ID:    "X3",
		Title: "Recovery radius of synthesized protocols",
		Paper: "(systems view of convergence: how many steps from an arbitrary fault to I)",
		Run: func(w io.Writer) (Outcome, error) {
			res, err := synthesis.Synthesize(protocols.AgreementBase(), synthOptions(synthesis.Options{}))
			if err != nil {
				return Outcome{}, err
			}
			agr := res.Best().Protocol
			snt := protocols.SumNotTwoSolution()
			tb := trace.NewTable("protocol", "K", "max recovery steps", "mean")
			linearOK := true
			for _, tc := range []struct {
				name string
				p    *core.Protocol
				ks   []int
			}{
				{"agreement/ss", agr, []int{4, 6, 8, 10}},
				{"sum-not-two/ss", snt, []int{4, 6, 8}},
			} {
				prevMax := 0
				for _, k := range tc.ks {
					in, err := explicit.NewInstance(tc.p, k, explicit.WithMaxStates(stateLimit(1<<22)))
					if err != nil {
						return Outcome{}, err
					}
					max, mean, all := in.RecoveryRadius()
					if !all {
						return Outcome{}, fmt.Errorf("%s K=%d: some state cannot reach I", tc.name, k)
					}
					tb.AddRow(tc.name, k, max, fmt.Sprintf("%.2f", mean))
					// Radius should grow (convergence work scales with ring
					// size) but stay well under the state count.
					if max < prevMax {
						linearOK = false
					}
					prevMax = max
				}
			}
			fmt.Fprint(w, tb.String())
			return Outcome{
				Measured: "recovery radius grows smoothly with K (roughly linear), confirming synthesized protocols converge without global resets",
				Match:    linearOK,
				Note:     "extension artifact: recovery-time analysis of the synthesized protocols",
			}, nil
		},
	}
}

func extCounting() Experiment {
	return Experiment{
		ID:    "X5",
		Title: "Exact |I(K)| and deadlock counts for arbitrary K via transfer matrices",
		Paper: "(the continuation relation as a counting device: global states are closed walks in the RCG)",
		Run: func(w io.Writer) (Outcome, error) {
			// Cross-validate against explicit enumeration where feasible...
			r := rcg.Build(protocols.MatchingB().Compile())
			ok := true
			tb := trace.NewTable("K", "|I(K)|", "illegitimate deadlocks", "explicit agrees")
			for k := 4; k <= 7; k++ {
				in, err := explicit.NewInstance(protocols.MatchingB(), k)
				if err != nil {
					return Outcome{}, err
				}
				var wantI, wantD int64
				for id := uint64(0); id < in.NumStates(); id++ {
					if in.InI(id) {
						wantI++
					} else if in.IsDeadlock(id) {
						wantD++
					}
				}
				gotI, err := r.CountLegitimate(k)
				if err != nil {
					return Outcome{}, err
				}
				gotD, err := r.CountIllegitimateDeadlocks(k)
				if err != nil {
					return Outcome{}, err
				}
				agree := gotI.Int64() == wantI && gotD.Int64() == wantD
				ok = ok && agree
				tb.AddRow(k, gotI, gotD, agree)
			}
			fmt.Fprint(w, tb.String())
			// ... then count far beyond explicit reach (3^128 global states).
			bigI, err := r.CountLegitimate(128)
			if err != nil {
				return Outcome{}, err
			}
			bigD, err := r.CountIllegitimateDeadlocks(128)
			if err != nil {
				return Outcome{}, err
			}
			fmt.Fprintf(w, "K=128: |I| = %s\n", bigI)
			fmt.Fprintf(w, "K=128: illegitimate deadlocks = %s\n", bigD)
			ok = ok && bigI.Sign() > 0 && bigD.Sign() > 0
			return Outcome{
				Measured: "transfer-matrix counts agree with exhaustive enumeration for K=4..7 and extend to K=128 (3^128 states) in microseconds",
				Match:    ok,
				Note:     "extension artifact: |I(K)| = trace(A^K) over the legitimacy-induced continuation relation",
			}, nil
		},
	}
}

func extFairness() Experiment {
	return Experiment{
		ID:    "X6",
		Title: "Weak fairness does not exclude livelocks (Corollary 5.7)",
		Paper: "\"the assumption of the existence of a weakly fair scheduler does not simplify the design of livelock-freedom in unidirectional rings\"",
		Run: func(w io.Writer) (Outcome, error) {
			// The paper's K=4 agreement livelock executes EVERY process
			// exactly twice per period — it is a weakly fair schedule, so a
			// weakly fair daemon cannot rule it out. Additionally, no
			// process is continuously enabled along it (Corollary 5.7).
			in, err := explicit.NewInstance(protocols.AgreementBoth(), 4)
			if err != nil {
				return Outcome{}, err
			}
			start := in.Encode([]int{1, 0, 0, 0})
			procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
			states, err := in.Computation(start, procs)
			if err != nil {
				return Outcome{}, err
			}
			isLivelock := states[len(states)-1] == start && in.IsLivelock(states[:len(states)-1])
			counts := map[int]int{}
			for _, p := range procs {
				counts[p]++
			}
			fair := len(counts) == 4
			for _, c := range counts {
				if c != 2 {
					fair = false
				}
			}
			fmt.Fprintf(w, "livelock schedule executes each process twice per period: %v\n", fair)
			// Corollary 5.7: every process is disabled somewhere in the cycle.
			noContinuous := true
			for proc := 0; proc < 4; proc++ {
				alwaysEnabled := true
				for _, s := range states[:len(states)-1] {
					enabled := false
					for _, e := range in.EnabledProcesses(s) {
						if e == proc {
							enabled = true
						}
					}
					if !enabled {
						alwaysEnabled = false
						break
					}
				}
				if alwaysEnabled {
					noContinuous = false
				}
				fmt.Fprintf(w, "process %d continuously enabled: %v\n", proc, alwaysEnabled)
			}
			return Outcome{
				Measured: "the K=4 livelock is weakly fair (each process fires twice per period) and no process is continuously enabled along it",
				Match:    isLivelock && fair && noContinuous,
				Note:     "extension artifact: mechanizes Corollary 5.7's insensitivity-to-weak-fairness claim",
			}, nil
		},
	}
}

func extSymmetry() Experiment {
	return Experiment{
		ID:    "X7",
		Title: "Rotation-symmetry reduction of the global baseline",
		Paper: "(systems optimization: ring protocols are rotation-symmetric, so the explicit checker can work on necklace orbits)",
		Run: func(w io.Writer) (Outcome, error) {
			p := protocols.SumNotTwoSolution()
			ok := true
			tb := trace.NewTable("K", "states", "orbits", "full verdict", "reduced verdict")
			for _, k := range []int{4, 6, 8, 10} {
				in, err := explicit.NewInstance(p, k)
				if err != nil {
					return Outcome{}, err
				}
				full := in.CheckStrongConvergence()
				red, err := in.CheckStrongConvergenceReduced()
				if err != nil {
					return Outcome{}, err
				}
				tb.AddRow(k, in.NumStates(), in.OrbitCount(), full.Converges, red.Converges)
				ok = ok && full.Converges == red.Converges
			}
			fmt.Fprint(w, tb.String())
			return Outcome{
				Measured: "quotient verdicts agree with full exploration at every K; the orbit space is ~K times smaller",
				Match:    ok,
				Note:     "extension artifact: soundness rests on rotation-equivariance of the transition relation and rotation-invariance of I",
			}, nil
		},
	}
}

func extLaneAgreement() Experiment {
	return Experiment{
		ID:    "X9",
		Title: "Three-lane agreement: theorems vs invariant certificates vs explicit oracle",
		Paper: "(cross-validation of the reproduction itself: three independently derived backends must agree wherever both are conclusive)",
		Run: func(w io.Writer) (Outcome, error) {
			zoo := protocols.All()
			names := make([]string, 0, len(zoo))
			for n := range zoo {
				names = append(names, n)
			}
			sort.Strings(names)
			// Every zoo protocol through all three lanes: the paper's
			// theorems (4.2, 5.14), the invariant-certificate lane, and the
			// explicit oracle at K=2..5 arbitrating any conflict.
			ok := true
			tb := trace.NewTable("protocol", "deadlock thm/inv", "livelock thm/inv", "conflicts")
			for _, n := range names {
				rep, err := verify.Check(zoo[n], verify.Options{Invariant: true, CrossValidateMaxK: 5})
				if err != nil {
					return Outcome{}, err
				}
				// Agreement = no recorded cross-lane conflicts AND the
				// conclusive verdicts literally coincide lane by lane.
				agree := len(rep.Disagreements) == 0 &&
					rep.Deadlock == rep.InvariantDeadlock &&
					(rep.LivelockTheorem == verify.Inconclusive ||
						rep.InvariantLivelock == verify.Inconclusive ||
						rep.LivelockTheorem == rep.InvariantLivelock)
				ok = ok && agree
				tb.AddRow(n,
					fmt.Sprintf("%v/%v", rep.Deadlock, rep.InvariantDeadlock),
					fmt.Sprintf("%v/%v", rep.LivelockTheorem, rep.InvariantLivelock),
					len(rep.Disagreements))
			}
			fmt.Fprint(w, tb.String())
			// Beyond the explicit ceiling: the lane's certificates are
			// parameterized in K, so they cover ring sizes whose global
			// state count exceeds the engine's 1<<28 default guard — where
			// no per-K table could even be admitted.
			overOK := true
			for _, tc := range []struct {
				name string
				k    int
			}{
				{"agreement-t01", 29}, // 2^29 states
				{"matchingA", 18},     // 3^18 states
			} {
				p := zoo[tc.name]
				states, fits := explicit.EstimateStates(p.Domain(), tc.k)
				bytes := verify.EstimatePeakTableBytes(p, verify.Options{Invariant: true})
				rep, err := verify.Check(p, verify.Options{Invariant: true})
				if err != nil {
					return Outcome{}, err
				}
				certified := fits && states > 1<<28 && bytes == 0 &&
					rep.InvariantDeadlock == verify.Proved && rep.InvariantLivelock == verify.Proved
				overOK = overOK && certified
				fmt.Fprintf(w, "%s at K=%d: %d global states (> 2^28), explicit bytes estimate %d, invariant lane certifies all K: %v\n",
					tc.name, tc.k, states, bytes, certified)
			}
			return Outcome{
				Measured: "theorem and invariant lanes agree on every zoo protocol wherever both are conclusive (explicit oracle to K=5 concurs), and the certificates extend past the 2^28-state explicit ceiling",
				Match:    ok && overOK,
				Note:     "extension artifact: the lane-agreement table behind the verify.Check cross-validation design; see internal/invariant",
			}, nil
		},
	}
}

func extParallel() Experiment {
	return Experiment{
		ID:    "X8",
		Title: "Frontier-parallel explicit engine: verdict equality vs sequential",
		Paper: "(systems optimization: the global baseline parallelizes over the state space; results must stay bit-identical to the sequential reference)",
		Run: func(w io.Writer) (Outcome, error) {
			ok := true
			tb := trace.NewTable("protocol", "K", "states", "seq verdict", "par verdict (4w)", "witnesses equal")
			for _, tc := range []struct {
				name string
				p    *core.Protocol
				ks   []int
			}{
				{"sum-not-two-ss", protocols.SumNotTwoSolution(), []int{6, 9}},
				{"gouda-acharya", protocols.GoudaAcharya(), []int{6, 8}},
				{"matchingA", protocols.MatchingA(), []int{5, 6}},
			} {
				for _, k := range tc.ks {
					seq, err := explicit.NewInstance(tc.p, k, explicit.WithWorkers(1))
					if err != nil {
						return Outcome{}, err
					}
					par, err := explicit.NewInstance(tc.p, k, explicit.WithWorkers(4))
					if err != nil {
						return Outcome{}, err
					}
					s := seq.CheckStrongConvergenceSeq()
					pr := par.CheckStrongConvergence()
					witEq := (s.DeadlockWitness == nil) == (pr.DeadlockWitness == nil) &&
						(s.DeadlockWitness == nil || *s.DeadlockWitness == *pr.DeadlockWitness) &&
						len(s.LivelockWitness) == len(pr.LivelockWitness)
					for i := range s.LivelockWitness {
						witEq = witEq && s.LivelockWitness[i] == pr.LivelockWitness[i]
					}
					tb.AddRow(tc.name, k, seq.NumStates(), s.Converges, pr.Converges, witEq)
					ok = ok && s.Converges == pr.Converges && witEq
				}
			}
			fmt.Fprint(w, tb.String())
			return Outcome{
				Measured: "parallel engine (4 workers) reproduces the sequential verdict AND the exact witness states on converging and non-converging protocols",
				Match:    ok,
				Note:     "extension artifact: determinism comes from smallest-id witness merges and a scheduling-independent SCC pass; see internal/explicit/parallel.go",
			}, nil
		},
	}
}
