package core_test

import (
	"fmt"

	"paramring/internal/core"
)

// Define binary agreement on a unidirectional ring and inspect its compiled
// local transition relation.
func ExampleNew() {
	p, err := core.New(core.Config{
		Name:   "agreement",
		Domain: 2,
		Lo:     -1, // reads x_{r-1} ...
		Hi:     0,  // ... and x_r
		Actions: []core.Action{{
			Name:  "copy",
			Guard: func(v core.View) bool { return v[0] != v[1] },
			Next:  func(v core.View) []int { return []int{v[0]} },
		}},
		Legit: func(v core.View) bool { return v[0] == v[1] },
	})
	if err != nil {
		panic(err)
	}
	sys := p.Compile()
	fmt.Println("local states:", sys.N())
	fmt.Println("local deadlocks:", len(sys.Deadlocks))
	for _, t := range sys.Trans {
		fmt.Println(sys.FormatTransition(t))
	}
	// Output:
	// local states: 4
	// local deadlocks: 2
	// 10 -> 11 [copy]
	// 01 -> 00 [copy]
}

func ExampleEncode() {
	// The local state <left, self, right> of maximal matching, domain 3.
	view := core.View{0, 1, 2}
	code := core.Encode(view, 3)
	fmt.Println(code)
	fmt.Println(core.Decode(code, 3, 3))
	// Output:
	// 21
	// [0 1 2]
}

func ExampleTuple() {
	// A process owning two booleans packs them into one domain of size 4.
	tp := core.MustNewTuple(2, 2)
	v := tp.Pack(1, 0)
	fmt.Println(v, tp.Unpack(v))
	// Output:
	// 1 [1 0]
}
