package core

import (
	"fmt"
	"sort"
)

// LocalTransition is one local transition (s, s') of the representative
// process together with the name of the action it belongs to. Source and
// destination differ at most in the own-variable position.
type LocalTransition struct {
	Src, Dst LocalState
	Action   string
}

// String renders the transition with raw codes; use System.FormatTransition
// for named values.
func (t LocalTransition) String() string {
	return fmt.Sprintf("%d->%d(%s)", t.Src, t.Dst, t.Action)
}

// System is the compiled form of a Protocol: the explicit local transition
// relation delta_r, per-state successor lists, legitimacy bits and the local
// deadlock set. All local-reasoning algorithms (RCG, LTG, synthesis) and the
// explicit model checker consume a System.
type System struct {
	p *Protocol

	// Trans lists every local transition, sorted by (Src, Dst, Action).
	Trans []LocalTransition
	// Succ[s] lists distinct successor states of s in sorted order.
	Succ [][]LocalState
	// TransFrom[s] lists indices into Trans with Src == s.
	TransFrom [][]int
	// Legit[s] reports LC_r(s).
	Legit []bool
	// IsDeadlock[s] reports that no action of P_r is enabled in s (i.e. s
	// has no outgoing local transition).
	IsDeadlock []bool
	// Deadlocks lists the local deadlock states in increasing order.
	Deadlocks []LocalState
}

// Compile enumerates the local state space and evaluates every action in
// every local state, producing the explicit transition relation.
//
// Note on stuttering: an action whose Next returns the current value of x_r
// produces a self-loop transition (s, s). The state still counts as enabled
// (not a deadlock); self-loops violate self-disablement and are flagged by
// SelfEnabling.
func (p *Protocol) Compile() *System {
	n := p.NumLocalStates()
	own := p.OwnIndex()
	sys := &System{
		p:          p,
		Succ:       make([][]LocalState, n),
		TransFrom:  make([][]int, n),
		Legit:      make([]bool, n),
		IsDeadlock: make([]bool, n),
	}
	for s := 0; s < n; s++ {
		view := p.Decode(LocalState(s))
		sys.Legit[s] = p.legit(view)
		for _, a := range p.actions {
			if !a.Guard(view) {
				continue
			}
			for _, nv := range a.Next(view) {
				if nv < 0 || nv >= p.domain {
					panic(fmt.Sprintf("core: action %q writes %d outside domain [0,%d)", a.Name, nv, p.domain))
				}
				dst := make(View, len(view))
				copy(dst, view)
				dst[own] = nv
				sys.Trans = append(sys.Trans, LocalTransition{
					Src:    LocalState(s),
					Dst:    p.Encode(dst),
					Action: a.Name,
				})
			}
		}
	}
	sort.Slice(sys.Trans, func(i, j int) bool {
		a, b := sys.Trans[i], sys.Trans[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Action < b.Action
	})
	// Deduplicate identical (Src,Dst,Action) triples, which arise when two
	// guard branches of the same action fire on one state.
	sys.Trans = dedupTransitions(sys.Trans)
	for i, t := range sys.Trans {
		s := int(t.Src)
		sys.TransFrom[s] = append(sys.TransFrom[s], i)
		k := len(sys.Succ[s])
		if k == 0 || sys.Succ[s][k-1] != t.Dst {
			sys.Succ[s] = append(sys.Succ[s], t.Dst)
		}
	}
	for s := 0; s < n; s++ {
		if len(sys.Succ[s]) == 0 {
			sys.IsDeadlock[s] = true
			sys.Deadlocks = append(sys.Deadlocks, LocalState(s))
		}
	}
	return sys
}

func dedupTransitions(ts []LocalTransition) []LocalTransition {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// Protocol returns the protocol this system was compiled from.
func (s *System) Protocol() *Protocol { return s.p }

// N returns the number of local states.
func (s *System) N() int { return len(s.Legit) }

// Enabled reports whether some action is enabled in local state ls.
func (s *System) Enabled(ls LocalState) bool { return !s.IsDeadlock[ls] }

// OwnValue returns the value of the process's own variable in state ls.
func (s *System) OwnValue(ls LocalState) int {
	return s.p.Decode(ls)[s.p.OwnIndex()]
}

// IllegitimateDeadlocks returns the local deadlocks outside LC_r.
func (s *System) IllegitimateDeadlocks() []LocalState {
	var out []LocalState
	for _, d := range s.Deadlocks {
		if !s.Legit[d] {
			out = append(out, d)
		}
	}
	return out
}

// SelfEnabling returns the transitions whose destination state is itself
// enabled — i.e. the witnesses that the protocol violates Assumption 2 of
// the paper's Section 5 (every action should be self-disabling). A self-loop
// (s, s) from an enabled state is always self-enabling.
func (s *System) SelfEnabling() []LocalTransition {
	var out []LocalTransition
	for _, t := range s.Trans {
		if s.Enabled(t.Dst) {
			out = append(out, t)
		}
	}
	return out
}

// IsSelfDisabling reports that every local transition lands in a local
// deadlock, i.e. Assumptions 1 and 2 of Section 5 hold: processes are
// self-terminating and have no self-enabling actions.
func (s *System) IsSelfDisabling() bool { return len(s.SelfEnabling()) == 0 }

// FormatTransition renders a transition with named values, e.g.
// "lls -> lss [A1]".
func (s *System) FormatTransition(t LocalTransition) string {
	return fmt.Sprintf("%s -> %s [%s]", s.p.FormatState(t.Src), s.p.FormatState(t.Dst), t.Action)
}

// TransitionsBySrc returns the transitions out of ls.
func (s *System) TransitionsBySrc(ls LocalState) []LocalTransition {
	idx := s.TransFrom[ls]
	out := make([]LocalTransition, len(idx))
	for i, j := range idx {
		out[i] = s.Trans[j]
	}
	return out
}
