package core

import "fmt"

// Compose builds the layered product of two protocols: every process owns
// the pair (a_r, b_r) packed into one variable over the product domain, the
// read window is the union of the two windows, and each layer's actions run
// unchanged on its own component (an action of p reads/writes only the
// a-components, an action of q only the b-components). The legitimate
// predicate is the conjunction of the layers'.
//
// Composition preserves stabilization for *silent* layers — protocols whose
// legitimate states are exactly their deadlock states, which is what the
// Section 6 synthesis produces (new transitions originate only outside I
// and the base Delta|I is empty for action-free inputs). With silent
// layers, any infinite computation of the product must execute one layer
// infinitely often, contradicting that layer's own convergence-plus-silence;
// and a product deadlock means both layers are deadlocked, hence both in
// their legitimate sets. The package tests validate this with the explicit
// checker; composition of non-silent layers is allowed but carries no such
// guarantee (one layer can starve the other under pure nondeterminism).
func Compose(p, q *Protocol) (*Protocol, error) {
	plo, phi := p.Window()
	qlo, qhi := q.Window()
	lo := min(plo, qlo)
	hi := max(phi, qhi)
	tup, err := NewTuple(p.Domain(), q.Domain())
	if err != nil {
		return nil, fmt.Errorf("core: composing domains: %w", err)
	}

	// layerView extracts one layer's window from a product view.
	layerView := func(v View, field, llo, lhi int) View {
		out := make(View, lhi-llo+1)
		for o := llo; o <= lhi; o++ {
			out[o-llo] = tup.Field(v[o-lo], field)
		}
		return out
	}

	var actions []Action
	for _, a := range p.Actions() {
		a := a
		actions = append(actions, Action{
			Name: "a/" + a.Name,
			Guard: func(v View) bool {
				return a.Guard(layerView(v, 0, plo, phi))
			},
			Next: func(v View) []int {
				sub := layerView(v, 0, plo, phi)
				bOwn := tup.Field(v[-lo], 1)
				var out []int
				for _, nv := range a.Next(sub) {
					out = append(out, tup.Pack(nv, bOwn))
				}
				return out
			},
		})
	}
	for _, a := range q.Actions() {
		a := a
		actions = append(actions, Action{
			Name: "b/" + a.Name,
			Guard: func(v View) bool {
				return a.Guard(layerView(v, 1, qlo, qhi))
			},
			Next: func(v View) []int {
				sub := layerView(v, 1, qlo, qhi)
				aOwn := tup.Field(v[-lo], 0)
				var out []int
				for _, nv := range a.Next(sub) {
					out = append(out, tup.Pack(aOwn, nv))
				}
				return out
			},
		})
	}
	return New(Config{
		Name:    p.Name() + "*" + q.Name(),
		Domain:  tup.Size(),
		Lo:      lo,
		Hi:      hi,
		Actions: actions,
		Legit: func(v View) bool {
			return p.LegitimateView(layerView(v, 0, plo, phi)) &&
				q.LegitimateView(layerView(v, 1, qlo, qhi))
		},
	})
}
