package core

import "fmt"

// Tuple packs several per-process variables into a single product domain, so
// that processes owning more than one variable still fit the one-variable
// model: a process owning (a in [0,n0), b in [0,n1)) owns one variable in
// [0, n0*n1) instead. Field i of a packed value contributes value * prod of
// earlier sizes.
type Tuple struct {
	sizes []int
	size  int
}

// NewTuple builds a product domain from per-field sizes (each >= 1).
func NewTuple(sizes ...int) (*Tuple, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: tuple needs at least one field")
	}
	size := 1
	for i, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("core: tuple field %d has size %d, want >= 1", i, s)
		}
		size *= s
		if size > MaxLocalStates {
			return nil, fmt.Errorf("core: tuple domain size exceeds limit %d", MaxLocalStates)
		}
	}
	return &Tuple{sizes: append([]int(nil), sizes...), size: size}, nil
}

// MustNewTuple is NewTuple that panics on error.
func MustNewTuple(sizes ...int) *Tuple {
	t, err := NewTuple(sizes...)
	if err != nil {
		panic(err)
	}
	return t
}

// Size returns the product domain size.
func (t *Tuple) Size() int { return t.size }

// Fields returns the number of fields.
func (t *Tuple) Fields() int { return len(t.sizes) }

// Pack converts field values to a packed domain value.
func (t *Tuple) Pack(fields ...int) int {
	if len(fields) != len(t.sizes) {
		panic(fmt.Sprintf("core: Pack got %d fields, want %d", len(fields), len(t.sizes)))
	}
	v := 0
	mult := 1
	for i, f := range fields {
		if f < 0 || f >= t.sizes[i] {
			panic(fmt.Sprintf("core: field %d value %d out of [0,%d)", i, f, t.sizes[i]))
		}
		v += f * mult
		mult *= t.sizes[i]
	}
	return v
}

// Unpack converts a packed domain value back to field values.
func (t *Tuple) Unpack(v int) []int {
	if v < 0 || v >= t.size {
		panic(fmt.Sprintf("core: packed value %d out of [0,%d)", v, t.size))
	}
	fields := make([]int, len(t.sizes))
	for i, s := range t.sizes {
		fields[i] = v % s
		v /= s
	}
	return fields
}

// Field extracts field i of a packed value without allocating.
func (t *Tuple) Field(v, i int) int {
	for j := 0; j < i; j++ {
		v /= t.sizes[j]
	}
	return v % t.sizes[i]
}
