package core

import (
	"fmt"
	"sort"
)

// TableAction is an explicit, table-driven guarded command: Moves maps a
// source local state code to the candidate new values of the own variable.
// Synthesis produces protocols in this form (candidate local transitions
// picked one by one), and the self-disabling transform rewrites protocols
// into it.
type TableAction struct {
	Name  string
	Moves map[LocalState][]int
}

// Action converts the table into a closure-based Action bound to a protocol
// shape (domain d, window width implied by the encoded states).
func (ta TableAction) Action(domain int) Action {
	// Copy to guard against caller mutation.
	moves := make(map[LocalState][]int, len(ta.Moves))
	for k, v := range ta.Moves {
		moves[k] = append([]int(nil), v...)
	}
	return Action{
		Name: ta.Name,
		Guard: func(v View) bool {
			_, ok := moves[Encode(v, domain)]
			return ok
		},
		Next: func(v View) []int {
			return moves[Encode(v, domain)]
		},
	}
}

// NewFromTable builds a Protocol whose actions are given explicitly as
// tables. cfg.Actions is ignored; everything else in cfg applies.
func NewFromTable(cfg Config, tables []TableAction) (*Protocol, error) {
	actions := make([]Action, len(tables))
	for i, ta := range tables {
		if ta.Name == "" {
			return nil, fmt.Errorf("core: table action %d has no name", i)
		}
		actions[i] = ta.Action(cfg.Domain)
	}
	cfg.Actions = actions
	return New(cfg)
}

// SelfDisable applies the paper's Section 5 transformation: every chain of
// local transitions is short-circuited so that each transition lands
// directly in a local deadlock. This preserves reachability of terminal
// local states, introduces no new local deadlocks, and removes all
// self-enabling actions — the form Assumption 2 requires.
//
// The protocol must be self-terminating (Assumption 1): if delta_r contains
// a cycle (including a self-loop), no terminal state exists for the states
// on it and an error is returned.
//
// The result is a new table-driven Protocol named p.Name() + "/sd". Each
// rewritten transition is attributed to the action of its first hop with a
// "*" suffix; transitions that already land in deadlocks keep their action
// names.
func (p *Protocol) SelfDisable() (*Protocol, error) {
	sys := p.Compile()
	if sys.IsSelfDisabling() {
		return p, nil
	}
	n := sys.N()

	// terminals[s] = sorted set of local deadlocks reachable from s via >= 1
	// transition; computed by DFS with cycle detection.
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	color := make([]int, n)
	terminals := make([][]LocalState, n)
	var visit func(s int) error
	visit = func(s int) error {
		color[s] = inStack
		set := map[LocalState]bool{}
		for _, d := range sys.Succ[s] {
			if sys.IsDeadlock[d] {
				set[d] = true
				continue
			}
			switch color[d] {
			case inStack:
				return fmt.Errorf("core: protocol %q is not self-terminating: delta_r has a cycle through local state %s",
					p.name, p.FormatState(LocalState(d)))
			case unvisited:
				if err := visit(int(d)); err != nil {
					return err
				}
			}
			for _, t := range terminals[d] {
				set[t] = true
			}
		}
		color[s] = done
		for t := range set {
			terminals[s] = append(terminals[s], t)
		}
		sort.Slice(terminals[s], func(i, j int) bool { return terminals[s][i] < terminals[s][j] })
		return nil
	}
	for s := 0; s < n; s++ {
		if color[s] == unvisited && !sys.IsDeadlock[s] {
			if err := visit(s); err != nil {
				return nil, err
			}
		}
	}

	// Rebuild transitions: per action name, a table of moves.
	moves := map[string]map[LocalState][]int{}
	add := func(name string, src, dst LocalState) {
		tbl := moves[name]
		if tbl == nil {
			tbl = map[LocalState][]int{}
			moves[name] = tbl
		}
		nv := sys.OwnValue(dst)
		for _, existing := range tbl[src] {
			if existing == nv {
				return
			}
		}
		tbl[src] = append(tbl[src], nv)
	}
	for _, t := range sys.Trans {
		if sys.IsDeadlock[t.Dst] {
			add(t.Action, t.Src, t.Dst)
			continue
		}
		for _, term := range terminals[t.Dst] {
			add(t.Action+"*", t.Src, term)
		}
	}
	names := make([]string, 0, len(moves))
	for name := range moves {
		names = append(names, name)
	}
	sort.Strings(names)
	tables := make([]TableAction, len(names))
	for i, name := range names {
		for _, vs := range moves[name] {
			sort.Ints(vs)
		}
		tables[i] = TableAction{Name: name, Moves: moves[name]}
	}
	return NewFromTable(Config{
		Name:       p.name + "/sd",
		Domain:     p.domain,
		ValueNames: p.valueNames,
		Lo:         p.lo,
		Hi:         p.hi,
		Legit:      p.legit,
	}, tables)
}
