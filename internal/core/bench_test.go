package core

import "testing"

func benchProtocol(b *testing.B, d, lo, hi int) *Protocol {
	b.Helper()
	p, err := New(Config{
		Name:   "bench",
		Domain: d,
		Lo:     lo,
		Hi:     hi,
		Actions: []Action{{
			Name:  "cycle",
			Guard: func(v View) bool { return v[0] == v[len(v)-1] },
			Next:  func(v View) []int { return []int{(v[len(v)-1] + 1) % d} },
		}},
		Legit: func(v View) bool { return v[0] != v[len(v)-1] },
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkCompile(b *testing.B) {
	cases := []struct {
		name      string
		d, lo, hi int
	}{
		{"d2w2", 2, -1, 0},
		{"d3w3", 3, -1, 1},
		{"d4w3", 4, -1, 1},
		{"d3w5", 3, -2, 2},
	}
	for _, tc := range cases {
		p := benchProtocol(b, tc.d, tc.lo, tc.hi)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Compile()
			}
		})
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	view := View{1, 2, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(Encode(view, 3), 3, 3)
	}
}

func BenchmarkSelfDisable(b *testing.B) {
	p, err := NewFromTable(Config{
		Name: "chain", Domain: 4, Lo: 0, Hi: 0,
		Legit: func(v View) bool { return true },
	}, []TableAction{
		{Name: "a", Moves: map[LocalState][]int{0: {1}}},
		{Name: "b", Moves: map[LocalState][]int{1: {2}}},
		{Name: "c", Moves: map[LocalState][]int{2: {3}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SelfDisable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuplePackUnpack(b *testing.B) {
	tp := MustNewTuple(3, 4, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Pack(tp.Unpack(i % tp.Size())...)
	}
}
