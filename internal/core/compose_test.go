package core_test

import (
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
)

func TestComposeShape(t *testing.T) {
	// agreement (window [-1,0], d=2) x matchingA (window [-1,1], d=3).
	p, err := core.Compose(protocols.AgreementOneSided("t01"), protocols.MatchingA())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Window()
	if lo != -1 || hi != 1 {
		t.Fatalf("window [%d,%d], want [-1,1]", lo, hi)
	}
	if p.Domain() != 6 {
		t.Fatalf("domain = %d, want 2*3", p.Domain())
	}
	if got := len(p.Actions()); got != 1+5 {
		t.Fatalf("actions = %d, want 6", got)
	}
}

// Composing two silent stabilizing layers yields a stabilizing product:
// validated exhaustively for small K.
func TestComposeSilentLayersStabilize(t *testing.T) {
	agr := protocols.AgreementOneSided("t01")
	snt := protocols.SumNotTwoSolution()
	prod, err := core.Compose(agr, snt)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 4; k++ {
		in, err := explicit.NewInstance(prod, k)
		if err != nil {
			t.Fatal(err)
		}
		if v := in.CheckClosure(); v != nil {
			t.Fatalf("K=%d: composed closure violated: %+v", k, *v)
		}
		rep := in.CheckStrongConvergence()
		if !rep.Converges {
			t.Fatalf("K=%d: composed protocol must stabilize: %+v", k, rep)
		}
	}
}

// Layer independence: an a-layer action never changes the b-component.
func TestComposeLayerIsolation(t *testing.T) {
	agr := protocols.AgreementOneSided("t01")
	col := protocols.SumNotTwoSolution()
	prod, err := core.Compose(agr, col)
	if err != nil {
		t.Fatal(err)
	}
	in, err := explicit.NewInstance(prod, 3)
	if err != nil {
		t.Fatal(err)
	}
	tup := core.MustNewTuple(2, 3)
	for id := uint64(0); id < in.NumStates(); id++ {
		before := in.Decode(id)
		for _, tr := range in.SuccessorsDetailed(id) {
			after := in.Decode(tr.To)
			for r := range before {
				if before[r] == after[r] {
					continue
				}
				aB, bB := tup.Field(before[r], 0), tup.Field(before[r], 1)
				aA, bA := tup.Field(after[r], 0), tup.Field(after[r], 1)
				if tr.Action[0] == 'a' && bB != bA {
					t.Fatalf("a-layer action %q changed the b component", tr.Action)
				}
				if tr.Action[0] == 'b' && aB != aA {
					t.Fatalf("b-layer action %q changed the a component", tr.Action)
				}
			}
		}
	}
}

func TestComposeLegitimacyIsConjunction(t *testing.T) {
	agr := protocols.AgreementBase()
	col := protocols.Coloring(2)
	prod, err := core.Compose(agr, col)
	if err != nil {
		t.Fatal(err)
	}
	tup := core.MustNewTuple(2, 2)
	// (a_{r-1}, a_r) must agree AND (b_{r-1}, b_r) must differ.
	view := core.View{tup.Pack(1, 0), tup.Pack(1, 1)}
	if !prod.LegitimateView(view) {
		t.Fatal("agree+differ must be legitimate")
	}
	view = core.View{tup.Pack(0, 0), tup.Pack(1, 1)}
	if prod.LegitimateView(view) {
		t.Fatal("disagreeing a-layer must be illegitimate")
	}
}
