// Package core models parameterized ring protocols in the style of Farahat &
// Ebnenasir, "Local Reasoning for Global Convergence of Parameterized Rings"
// (ICDCS 2012), Section 2.
//
// A parameterized protocol p(K) is given by a single representative process
// P_r. Every process owns one variable x_r over a finite domain D (constant
// in K) and reads a contiguous window x_{r+Lo} .. x_{r+Hi} of ring neighbors
// (Lo <= 0 <= Hi, constant in K). The local state of P_r is the valuation of
// that window; the protocol's code is a set of guarded commands (actions)
// over the window that write x_r. The set of legitimate states I(K) is
// locally conjunctive: I(K) = AND over r of LC_r, with LC_r a predicate on
// the window.
//
// This class covers every example in the paper — unidirectional protocols
// read the window [-1, 0] and bidirectional maximal matching reads [-1, 1].
// Processes with several owned variables are modeled by a product domain
// (see Tuple).
package core

import (
	"errors"
	"fmt"
	"strings"
)

// MaxLocalStates bounds the size of the representative process's local state
// space (domain^window). The paper's examples peak at 27; the bound exists to
// catch accidental combinatorial explosions in user specs.
const MaxLocalStates = 1 << 20

// LocalState is the mixed-radix code of a local state: a valuation of the
// read window of the representative process. For a window of width w over
// domain d, codes range over [0, d^w), with the value at window index i
// (offset Lo+i) contributing value * d^i.
type LocalState int

// View is a decoded local state: View[i] is the value of the variable at
// ring offset Lo+i relative to the process. The process's own variable sits
// at index -Lo.
type View []int

// At returns the value at ring offset o (Lo <= o <= Hi) given the window
// start lo.
func (v View) At(o, lo int) int { return v[o-lo] }

// Encode packs a view into its mixed-radix LocalState code.
func Encode(view View, domain int) LocalState {
	code := 0
	mult := 1
	for _, x := range view {
		if x < 0 || x >= domain {
			panic(fmt.Sprintf("core: value %d out of domain [0,%d)", x, domain))
		}
		code += x * mult
		mult *= domain
	}
	return LocalState(code)
}

// EncodeWeights returns the mixed-radix place values of Encode for a
// window of width w over the given domain: EncodeWeights(d, w)[i] == d^i,
// the coefficient the value at window index i contributes to the code.
// Incremental encoders — the explicit engine's odometer scan is the
// in-tree consumer — keep a window's code current across a single-value
// change by adding (new-old)*weight instead of re-encoding the whole
// window, which is what turns a K-process re-encode per state into O(1)
// amortized work per scan step.
func EncodeWeights(domain, w int) []int {
	weights := make([]int, w)
	mult := 1
	for i := 0; i < w; i++ {
		weights[i] = mult
		mult *= domain
	}
	return weights
}

// Decode unpacks a LocalState code into a fresh view of width w.
func Decode(ls LocalState, domain, w int) View {
	view := make(View, w)
	c := int(ls)
	for i := 0; i < w; i++ {
		view[i] = c % domain
		c /= domain
	}
	if c != 0 {
		panic(fmt.Sprintf("core: local state %d out of range for domain %d width %d", ls, domain, w))
	}
	return view
}

// Action is a guarded command of the representative process:
//
//	Name: grd(view) -> x_r := one value from Next(view)
//
// Next may return several candidate values, modeling nondeterministic
// assignments such as the paper's "m_r := right | left" (action A2 of
// Example 4.2). Returning the current value of x_r models a stuttering (and
// hence self-enabling) transition; returning an empty slice means the action
// is effectively disabled even when Guard holds.
type Action struct {
	Name  string
	Guard func(v View) bool
	Next  func(v View) []int
}

// Config assembles a Protocol. All fields except ValueNames are required.
type Config struct {
	// Name identifies the protocol in output and witnesses.
	Name string
	// Domain is the size d of each process variable's domain.
	Domain int
	// ValueNames optionally names domain values ("left", "self", "right");
	// the first letter of each is used in compact state strings ("lsr").
	ValueNames []string
	// Lo, Hi delimit the read window: the process reads x_{r+Lo}..x_{r+Hi}.
	// Lo <= 0 <= Hi is required, and the window must include the own
	// variable (offset 0), which is the only writable one.
	Lo, Hi int
	// Actions are the guarded commands of the representative process. An
	// empty slice is legal: synthesis commonly starts from an empty protocol
	// (the paper's 3-coloring, 2-coloring and sum-not-two inputs).
	Actions []Action
	// Legit is the local legitimacy predicate LC_r over the window.
	Legit func(v View) bool
}

// Protocol is an immutable parameterized ring protocol description.
type Protocol struct {
	name       string
	domain     int
	valueNames []string
	lo, hi     int
	actions    []Action
	legit      func(v View) bool
}

// New validates cfg and builds a Protocol.
func New(cfg Config) (*Protocol, error) {
	if cfg.Name == "" {
		return nil, errors.New("core: protocol name is required")
	}
	if cfg.Domain < 2 {
		return nil, fmt.Errorf("core: domain must be >= 2, got %d", cfg.Domain)
	}
	if cfg.Lo > 0 || cfg.Hi < 0 {
		return nil, fmt.Errorf("core: window [%d,%d] must contain offset 0", cfg.Lo, cfg.Hi)
	}
	if cfg.Legit == nil {
		return nil, errors.New("core: legitimacy predicate LC_r is required")
	}
	if cfg.ValueNames != nil && len(cfg.ValueNames) != cfg.Domain {
		return nil, fmt.Errorf("core: %d value names for domain %d", len(cfg.ValueNames), cfg.Domain)
	}
	w := cfg.Hi - cfg.Lo + 1
	n := 1
	for i := 0; i < w; i++ {
		n *= cfg.Domain
		if n > MaxLocalStates {
			return nil, fmt.Errorf("core: local state space %d^%d exceeds limit %d", cfg.Domain, w, MaxLocalStates)
		}
	}
	for i, a := range cfg.Actions {
		if a.Guard == nil || a.Next == nil {
			return nil, fmt.Errorf("core: action %d (%q) missing Guard or Next", i, a.Name)
		}
	}
	names := append([]string(nil), cfg.ValueNames...)
	if names == nil {
		names = make([]string, cfg.Domain)
		for i := range names {
			names[i] = fmt.Sprintf("%d", i)
		}
	}
	return &Protocol{
		name:       cfg.Name,
		domain:     cfg.Domain,
		valueNames: names,
		lo:         cfg.Lo,
		hi:         cfg.Hi,
		actions:    append([]Action(nil), cfg.Actions...),
		legit:      cfg.Legit,
	}, nil
}

// MustNew is New that panics on error; intended for the static protocol zoo
// and tests.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the protocol name.
func (p *Protocol) Name() string { return p.name }

// Domain returns the domain size d.
func (p *Protocol) Domain() int { return p.domain }

// ValueNames returns the (possibly defaulted) domain value names.
func (p *Protocol) ValueNames() []string { return append([]string(nil), p.valueNames...) }

// Window returns the read window offsets [lo, hi].
func (p *Protocol) Window() (lo, hi int) { return p.lo, p.hi }

// W returns the window width hi-lo+1.
func (p *Protocol) W() int { return p.hi - p.lo + 1 }

// OwnIndex returns the window index of the process's own variable.
func (p *Protocol) OwnIndex() int { return -p.lo }

// NumLocalStates returns d^w, the size of the local state space S_r^l.
func (p *Protocol) NumLocalStates() int {
	n := 1
	for i := 0; i < p.W(); i++ {
		n *= p.domain
	}
	return n
}

// Actions returns a copy of the action list.
func (p *Protocol) Actions() []Action { return append([]Action(nil), p.actions...) }

// Encode packs a view using this protocol's domain.
func (p *Protocol) Encode(v View) LocalState { return Encode(v, p.domain) }

// Decode unpacks a local state code using this protocol's domain and width.
func (p *Protocol) Decode(ls LocalState) View { return Decode(ls, p.domain, p.W()) }

// Legitimate reports whether the local state satisfies LC_r.
func (p *Protocol) Legitimate(ls LocalState) bool { return p.legit(p.Decode(ls)) }

// LegitimateView reports whether a decoded view satisfies LC_r.
func (p *Protocol) LegitimateView(v View) bool { return p.legit(v) }

// Unidirectional reports whether every process reads only itself and left
// neighbors (Hi == 0), which makes the ring unidirectional: information, and
// hence enablement, flows only rightward (P_{i+1} is the unique successor of
// P_i). The livelock-freedom theorems of the paper's Section 5 require this.
func (p *Protocol) Unidirectional() bool { return p.hi == 0 && p.lo < 0 }

// WithActions returns a copy of p with extra actions appended. Used to add
// synthesized convergence actions to a non-stabilizing base protocol.
func (p *Protocol) WithActions(name string, extra ...Action) *Protocol {
	q := *p
	if name != "" {
		q.name = name
	}
	q.actions = append(append([]Action(nil), p.actions...), extra...)
	return &q
}

// WithName returns a copy of p with a different name.
func (p *Protocol) WithName(name string) *Protocol {
	q := *p
	q.name = name
	return &q
}

// FormatView renders a view as the paper's compact string, e.g. "lls" for
// <left,left,self>: when all value names start with distinct letters, only
// the first letter of each is used; otherwise names are joined with commas.
func (p *Protocol) FormatView(v View) string {
	compact := true
	seen := map[byte]bool{}
	for _, n := range p.valueNames {
		if n == "" || seen[n[0]] {
			compact = false
			break
		}
		seen[n[0]] = true
	}
	var b strings.Builder
	for i, x := range v {
		n := p.valueNames[x]
		if compact {
			b.WriteByte(n[0])
			continue
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
	}
	return b.String()
}

// FormatState renders a local state code via FormatView.
func (p *Protocol) FormatState(ls LocalState) string { return p.FormatView(p.Decode(ls)) }

// FormatGlobal renders a ring valuation (one value per process) compactly.
func (p *Protocol) FormatGlobal(vals []int) string {
	v := make(View, len(vals))
	copy(v, vals)
	return p.FormatView(v)
}
