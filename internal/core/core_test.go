package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// agreementFull is Example 5.2 of the paper: a binary agreement protocol on a
// unidirectional ring with both correction transitions t01 and t10.
func agreementFull(t *testing.T) *Protocol {
	t.Helper()
	p, err := New(Config{
		Name:   "agreement",
		Domain: 2,
		Lo:     -1,
		Hi:     0,
		Actions: []Action{
			{
				Name:  "t10",
				Guard: func(v View) bool { return v[0] == 0 && v[1] == 1 },
				Next:  func(v View) []int { return []int{0} },
			},
			{
				Name:  "t01",
				Guard: func(v View) bool { return v[0] == 1 && v[1] == 0 },
				Next:  func(v View) []int { return []int{1} },
			},
		},
		Legit: func(v View) bool { return v[0] == v[1] },
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	legit := func(v View) bool { return true }
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing name", Config{Domain: 2, Lo: -1, Hi: 0, Legit: legit}},
		{"domain too small", Config{Name: "x", Domain: 1, Lo: -1, Hi: 0, Legit: legit}},
		{"window excludes own var (lo>0)", Config{Name: "x", Domain: 2, Lo: 1, Hi: 2, Legit: legit}},
		{"window excludes own var (hi<0)", Config{Name: "x", Domain: 2, Lo: -2, Hi: -1, Legit: legit}},
		{"missing legit", Config{Name: "x", Domain: 2, Lo: -1, Hi: 0}},
		{"bad value names", Config{Name: "x", Domain: 2, Lo: -1, Hi: 0, Legit: legit, ValueNames: []string{"a"}}},
		{"nil guard", Config{Name: "x", Domain: 2, Lo: -1, Hi: 0, Legit: legit, Actions: []Action{{Name: "a", Next: func(View) []int { return nil }}}}},
		{"state space too big", Config{Name: "x", Domain: 10, Lo: -8, Hi: 0, Legit: legit}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
}

func TestBasicAccessors(t *testing.T) {
	p := agreementFull(t)
	if p.Name() != "agreement" || p.Domain() != 2 {
		t.Fatal("accessors wrong")
	}
	lo, hi := p.Window()
	if lo != -1 || hi != 0 {
		t.Fatalf("window = [%d,%d]", lo, hi)
	}
	if p.W() != 2 || p.OwnIndex() != 1 || p.NumLocalStates() != 4 {
		t.Fatalf("W=%d own=%d n=%d", p.W(), p.OwnIndex(), p.NumLocalStates())
	}
	if !p.Unidirectional() {
		t.Fatal("agreement window [-1,0] is unidirectional")
	}
	if len(p.Actions()) != 2 {
		t.Fatal("actions lost")
	}
	names := p.ValueNames()
	if !reflect.DeepEqual(names, []string{"0", "1"}) {
		t.Fatalf("default value names = %v", names)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for _, w := range []int{1, 2, 3} {
			n := 1
			for i := 0; i < w; i++ {
				n *= d
			}
			for s := 0; s < n; s++ {
				view := Decode(LocalState(s), d, w)
				if got := Encode(view, d); got != LocalState(s) {
					t.Fatalf("d=%d w=%d: roundtrip %d -> %v -> %d", d, w, s, view, got)
				}
			}
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(raw uint16, dRaw, wRaw uint8) bool {
		d := 2 + int(dRaw)%4 // 2..5
		w := 1 + int(wRaw)%3 // 1..3
		n := 1
		for i := 0; i < w; i++ {
			n *= d
		}
		s := LocalState(int(raw) % n)
		return Encode(Decode(s, d, w), d) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePanicsOutOfDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(View{2}, 2)
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decode(LocalState(4), 2, 2)
}

func TestViewAt(t *testing.T) {
	v := View{7, 8, 9} // offsets -1, 0, +1 with lo=-1
	if v.At(-1, -1) != 7 || v.At(0, -1) != 8 || v.At(1, -1) != 9 {
		t.Fatal("View.At wrong")
	}
}

func TestCompileAgreement(t *testing.T) {
	sys := agreementFull(t).Compile()
	// States: 00=0, 10=1 (x_{r-1}=1? careful: index 0 is offset -1), decode:
	// code = v[0] + 2*v[1]. Local states: 0=(0,0) legit, 1=(1,0) t01 enabled,
	// 2=(0,1) t10 enabled, 3=(1,1) legit.
	if sys.N() != 4 {
		t.Fatalf("N = %d", sys.N())
	}
	if !sys.Legit[0] || sys.Legit[1] || sys.Legit[2] || !sys.Legit[3] {
		t.Fatalf("legit bits wrong: %v", sys.Legit)
	}
	if !sys.IsDeadlock[0] || !sys.IsDeadlock[3] || sys.IsDeadlock[1] || sys.IsDeadlock[2] {
		t.Fatalf("deadlock bits wrong: %v", sys.IsDeadlock)
	}
	wantTrans := []LocalTransition{
		{Src: 1, Dst: 3, Action: "t01"},
		{Src: 2, Dst: 0, Action: "t10"},
	}
	if !reflect.DeepEqual(sys.Trans, wantTrans) {
		t.Fatalf("Trans = %v, want %v", sys.Trans, wantTrans)
	}
	if got := sys.Deadlocks; !reflect.DeepEqual(got, []LocalState{0, 3}) {
		t.Fatalf("Deadlocks = %v", got)
	}
	if got := sys.IllegitimateDeadlocks(); len(got) != 0 {
		t.Fatalf("IllegitimateDeadlocks = %v, want none", got)
	}
	if !sys.IsSelfDisabling() {
		t.Fatal("agreement transitions land in deadlocks; should be self-disabling")
	}
	if sys.OwnValue(2) != 1 {
		t.Fatalf("OwnValue(2) = %d, want 1", sys.OwnValue(2))
	}
}

func TestCompileNondeterministicAction(t *testing.T) {
	p := MustNew(Config{
		Name:   "nondet",
		Domain: 3,
		Lo:     0,
		Hi:     0,
		Actions: []Action{{
			Name:  "a",
			Guard: func(v View) bool { return v[0] == 0 },
			Next:  func(v View) []int { return []int{1, 2} },
		}},
		Legit: func(v View) bool { return true },
	})
	sys := p.Compile()
	if got := sys.Succ[0]; !reflect.DeepEqual(got, []LocalState{1, 2}) {
		t.Fatalf("Succ[0] = %v", got)
	}
	if len(sys.TransitionsBySrc(0)) != 2 {
		t.Fatal("expected 2 transitions from state 0")
	}
}

func TestCompileDeduplicatesTransitions(t *testing.T) {
	p := MustNew(Config{
		Name:   "dup",
		Domain: 2,
		Lo:     0,
		Hi:     0,
		Actions: []Action{{
			Name:  "a",
			Guard: func(v View) bool { return v[0] == 0 },
			Next:  func(v View) []int { return []int{1, 1} },
		}},
		Legit: func(v View) bool { return true },
	})
	sys := p.Compile()
	if len(sys.Trans) != 1 {
		t.Fatalf("Trans = %v, want single deduped transition", sys.Trans)
	}
}

func TestCompilePanicsOnOutOfDomainWrite(t *testing.T) {
	p := MustNew(Config{
		Name:   "bad",
		Domain: 2,
		Lo:     0,
		Hi:     0,
		Actions: []Action{{
			Name:  "a",
			Guard: func(v View) bool { return true },
			Next:  func(v View) []int { return []int{5} },
		}},
		Legit: func(v View) bool { return true },
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-domain write")
		}
	}()
	p.Compile()
}

func TestSelfEnablingDetection(t *testing.T) {
	// x=0 -> x:=1, x=1 -> x:=0 on a window of just the own variable: every
	// transition lands in an enabled state.
	p := MustNew(Config{
		Name:   "blinker",
		Domain: 2,
		Lo:     0,
		Hi:     0,
		Actions: []Action{{
			Name:  "flip",
			Guard: func(v View) bool { return true },
			Next:  func(v View) []int { return []int{1 - v[0]} },
		}},
		Legit: func(v View) bool { return true },
	})
	sys := p.Compile()
	if sys.IsSelfDisabling() {
		t.Fatal("blinker is self-enabling")
	}
	if len(sys.SelfEnabling()) != 2 {
		t.Fatalf("SelfEnabling = %v", sys.SelfEnabling())
	}
}

func TestFormatViewAndState(t *testing.T) {
	p := MustNew(Config{
		Name:       "mm",
		Domain:     3,
		ValueNames: []string{"left", "self", "right"},
		Lo:         -1,
		Hi:         1,
		Legit:      func(v View) bool { return true },
	})
	if got := p.FormatView(View{0, 0, 1}); got != "lls" {
		t.Fatalf("FormatView = %q, want lls", got)
	}
	ls := p.Encode(View{2, 1, 0})
	if got := p.FormatState(ls); got != "rsl" {
		t.Fatalf("FormatState = %q, want rsl", got)
	}
	if got := p.FormatGlobal([]int{0, 1, 2}); got != "lsr" {
		t.Fatalf("FormatGlobal = %q", got)
	}
}

func TestFormatViewMultiChar(t *testing.T) {
	p := MustNew(Config{
		Name:       "mc",
		Domain:     2,
		ValueNames: []string{"on", "off"},
		Lo:         0,
		Hi:         0,
		Legit:      func(v View) bool { return true },
	})
	if got := p.FormatView(View{1}); got != "off" {
		t.Fatalf("FormatView = %q", got)
	}
}

func TestWithActionsDoesNotMutate(t *testing.T) {
	p := agreementFull(t)
	before := len(p.Actions())
	q := p.WithActions("agreement+x", Action{
		Name:  "extra",
		Guard: func(v View) bool { return false },
		Next:  func(v View) []int { return nil },
	})
	if len(p.Actions()) != before {
		t.Fatal("WithActions mutated receiver")
	}
	if len(q.Actions()) != before+1 || q.Name() != "agreement+x" {
		t.Fatal("WithActions result wrong")
	}
	if p.WithName("zz").Name() != "zz" || p.Name() != "agreement" {
		t.Fatal("WithName wrong")
	}
}

func TestNewFromTable(t *testing.T) {
	// Equivalent of agreement's t01 as a table.
	p, err := NewFromTable(Config{
		Name:   "tbl",
		Domain: 2,
		Lo:     -1,
		Hi:     0,
		Legit:  func(v View) bool { return v[0] == v[1] },
	}, []TableAction{{
		Name:  "t01",
		Moves: map[LocalState][]int{1: {1}}, // state (1,0) -> write 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	sys := p.Compile()
	want := []LocalTransition{{Src: 1, Dst: 3, Action: "t01"}}
	if !reflect.DeepEqual(sys.Trans, want) {
		t.Fatalf("Trans = %v, want %v", sys.Trans, want)
	}
}

func TestNewFromTableRequiresName(t *testing.T) {
	_, err := NewFromTable(Config{
		Name: "tbl", Domain: 2, Lo: 0, Hi: 0, Legit: func(v View) bool { return true },
	}, []TableAction{{Moves: map[LocalState][]int{}}})
	if err == nil {
		t.Fatal("expected error for unnamed table action")
	}
}

func TestSelfDisableIdentityOnCompliantProtocol(t *testing.T) {
	p := agreementFull(t)
	q, err := p.SelfDisable()
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatal("already self-disabling protocol should be returned unchanged")
	}
}

func TestSelfDisableShortensChains(t *testing.T) {
	// Window [0,0], domain 3: 0 -> 1 -> 2, with 2 terminal. After the
	// transform, 0 must jump directly to 2.
	p, err := NewFromTable(Config{
		Name:   "chain",
		Domain: 3,
		Lo:     0,
		Hi:     0,
		Legit:  func(v View) bool { return true },
	}, []TableAction{
		{Name: "s01", Moves: map[LocalState][]int{0: {1}}},
		{Name: "s12", Moves: map[LocalState][]int{1: {2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.SelfDisable()
	if err != nil {
		t.Fatal(err)
	}
	sys := q.Compile()
	if !sys.IsSelfDisabling() {
		t.Fatal("transform did not produce a self-disabling protocol")
	}
	if got := sys.Succ[0]; !reflect.DeepEqual(got, []LocalState{2}) {
		t.Fatalf("Succ[0] = %v, want [2]", got)
	}
	if got := sys.Succ[1]; !reflect.DeepEqual(got, []LocalState{2}) {
		t.Fatalf("Succ[1] = %v, want [2]", got)
	}
	// No new deadlocks: state 2 was and remains the only deadlock among {0,1,2}.
	if !reflect.DeepEqual(sys.Deadlocks, []LocalState{2}) {
		t.Fatalf("Deadlocks = %v", sys.Deadlocks)
	}
	if !strings.HasSuffix(q.Name(), "/sd") {
		t.Fatalf("name = %q", q.Name())
	}
}

func TestSelfDisablePreservesBranching(t *testing.T) {
	// 0 -> 1, 1 -> {0? no...}: use 0->1, 1->2, 1->3 (terminals 2 and 3):
	// 0 must reach both.
	p, err := NewFromTable(Config{
		Name:   "branch",
		Domain: 4,
		Lo:     0,
		Hi:     0,
		Legit:  func(v View) bool { return true },
	}, []TableAction{
		{Name: "a", Moves: map[LocalState][]int{0: {1}}},
		{Name: "b", Moves: map[LocalState][]int{1: {2, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.SelfDisable()
	if err != nil {
		t.Fatal(err)
	}
	sys := q.Compile()
	if got := sys.Succ[0]; !reflect.DeepEqual(got, []LocalState{2, 3}) {
		t.Fatalf("Succ[0] = %v, want [2 3]", got)
	}
}

func TestSelfDisableRejectsLocalCycle(t *testing.T) {
	p, err := NewFromTable(Config{
		Name:   "cyc",
		Domain: 2,
		Lo:     0,
		Hi:     0,
		Legit:  func(v View) bool { return true },
	}, []TableAction{
		{Name: "a", Moves: map[LocalState][]int{0: {1}, 1: {0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SelfDisable(); err == nil {
		t.Fatal("expected error: delta_r has a cycle (not self-terminating)")
	}
}

func TestSystemFormatTransition(t *testing.T) {
	sys := agreementFull(t).Compile()
	got := sys.FormatTransition(sys.Trans[0])
	if got != "10 -> 11 [t01]" {
		t.Fatalf("FormatTransition = %q", got)
	}
}

// --- Tuple tests -------------------------------------------------------------

func TestTuplePackUnpack(t *testing.T) {
	tp := MustNewTuple(3, 2, 4)
	if tp.Size() != 24 || tp.Fields() != 3 {
		t.Fatalf("Size=%d Fields=%d", tp.Size(), tp.Fields())
	}
	for v := 0; v < tp.Size(); v++ {
		fields := tp.Unpack(v)
		if got := tp.Pack(fields...); got != v {
			t.Fatalf("roundtrip %d -> %v -> %d", v, fields, got)
		}
		for i := range fields {
			if tp.Field(v, i) != fields[i] {
				t.Fatalf("Field(%d,%d) = %d, want %d", v, i, tp.Field(v, i), fields[i])
			}
		}
	}
}

func TestTupleValidation(t *testing.T) {
	if _, err := NewTuple(); err == nil {
		t.Fatal("empty tuple should error")
	}
	if _, err := NewTuple(0); err == nil {
		t.Fatal("zero-size field should error")
	}
	if _, err := NewTuple(1<<11, 1<<11); err == nil {
		t.Fatal("oversized tuple should error")
	}
}

func TestTuplePanics(t *testing.T) {
	tp := MustNewTuple(2, 2)
	for name, f := range map[string]func(){
		"pack arity":  func() { tp.Pack(1) },
		"pack range":  func() { tp.Pack(2, 0) },
		"unpack high": func() { tp.Unpack(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTupleQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		nf := 1 + rng.Intn(4)
		sizes := make([]int, nf)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(5)
		}
		tp, err := NewTuple(sizes...)
		if err != nil {
			t.Fatal(err)
		}
		v := rng.Intn(tp.Size())
		if tp.Pack(tp.Unpack(v)...) != v {
			t.Fatalf("roundtrip failed for sizes=%v v=%d", sizes, v)
		}
	}
}
