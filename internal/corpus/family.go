package corpus

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"paramring/internal/core"
	"paramring/internal/ltg"
)

// FamilyKey identifies a protocol's shape: domain, read window, and the
// per-state legitimacy bitset. It captures exactly what ltg.LTG.SameShape
// compares, so two protocols with equal FamilyKeys can share a skeleton
// LTG and a Theorem 5.14 verdict memo, and two with different keys never
// will (the per-family skeleton handed out by FamilyMemos always passes
// the SameShape guard, which stays in place as defense in depth).
func FamilyKey(p *core.Protocol) string {
	lo, hi := p.Window()
	h := sha256.New()
	var buf [8]byte
	for _, v := range []int{p.Domain(), lo, hi} {
		binary.BigEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	n := p.NumLocalStates()
	bits := make([]byte, (n+7)/8)
	for s := 0; s < n; s++ {
		if p.Legitimate(core.LocalState(s)) {
			bits[s/8] |= 1 << (s % 8)
		}
	}
	h.Write(bits)
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// familyShared is the memo state one protocol family shares: the skeleton
// LTG donating its s-arc RCG, and the verdict memo. Both are safe for
// concurrent use (the skeleton is read-only after Build; ltg.Memo verdicts
// are pure functions of the key).
type familyShared struct {
	skel *ltg.LTG
	memo *ltg.Memo
}

// FamilyMemos is a bounded registry of per-family shared memo state. The
// bound is FIFO: fleets are grouped by family, so by the time a family is
// evicted its members have almost certainly all been verified. All methods
// are safe for concurrent use.
type FamilyMemos struct {
	mu    sync.Mutex
	max   int
	order []string
	m     map[string]*familyShared
	// evictedHits / evictedMisses preserve the counters of evicted
	// families so Stats stays cumulative.
	evictedHits   uint64
	evictedMisses uint64
}

// NewFamilyMemos returns a registry bounded to max families (<= 0 selects
// 256).
func NewFamilyMemos(max int) *FamilyMemos {
	if max <= 0 {
		max = 256
	}
	return &FamilyMemos{max: max, m: map[string]*familyShared{}}
}

// CheckOptions returns base with the Skeleton and Memo of p's family
// filled in, creating the family's shared state on first sight. A base
// that already carries a skeleton is returned unchanged — the caller made
// its own sharing arrangement.
func (f *FamilyMemos) CheckOptions(p *core.Protocol, base ltg.CheckOptions) ltg.CheckOptions {
	if base.Skeleton != nil {
		return base
	}
	key := FamilyKey(p)
	f.mu.Lock()
	fs, ok := f.m[key]
	if !ok {
		fs = &familyShared{skel: ltg.Build(p.Compile()), memo: ltg.NewMemo()}
		f.m[key] = fs
		f.order = append(f.order, key)
		for len(f.order) > f.max {
			if old, ok := f.m[f.order[0]]; ok {
				h, m := old.memo.Stats()
				f.evictedHits += h
				f.evictedMisses += m
			}
			delete(f.m, f.order[0])
			f.order = f.order[1:]
		}
	}
	f.mu.Unlock()
	base.Skeleton = fs.skel
	base.Memo = fs.memo
	return base
}

// Stats aggregates memo hits and misses across all families, evicted ones
// included (the counters are cumulative).
func (f *FamilyMemos) Stats() (hits, misses uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	hits, misses = f.evictedHits, f.evictedMisses
	for _, fs := range f.m {
		h, m := fs.memo.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Len returns the number of live families.
func (f *FamilyMemos) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}
