// Package corpus maintains a fleet-scale store of protocol specs and
// verifies it through the local-reasoning pipeline with shared memo state.
//
// The store is keyed by the canonical dsl.Format rendering: two textual
// variants of one protocol dedup onto a single entry, and the entry's ID is
// a content address of the canonical text, so IDs are stable across
// re-ingests, renames of the source file, and restarts. Entries carry
// dependency edges (a sweep variant depends on its family base); editing an
// entry dirties its transitive reverse-dependency closure, so an
// incremental re-verification touches exactly the affected specs.
//
// Verification shares three layers of memo state across the fleet (see
// fleet.go): one compiled-spec cache for the DSL front end, and — per
// protocol family, i.e. per (domain, window, legitimacy) shape — one
// skeleton LTG donating its s-arc RCG and one Theorem 5.14 verdict memo.
// Sharing never changes a verdict: the skeleton is only consulted when the
// shapes match exactly (ltg.LTG.SameShape), and memo verdicts are pure
// functions of the t-arc subset.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"paramring/internal/verify"
)

// Outcome classifies one Ingest call.
type Outcome int

const (
	// Added: the spec was new to the corpus.
	Added Outcome = iota + 1
	// Unchanged: the name already mapped to the same canonical rendering
	// (or the same content arrived under a new name and deduped onto the
	// existing entry).
	Unchanged
	// Updated: the name existed with different content; the entry was
	// rewritten and its reverse-dependency closure marked dirty.
	Updated
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Added:
		return "added"
	case Unchanged:
		return "unchanged"
	case Updated:
		return "updated"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Entry is one corpus spec.
type Entry struct {
	// ID is the content address: the first 12 hex digits of the SHA-256 of
	// the canonical rendering. Stable across renames and restarts.
	ID string `json:"id"`
	// Name is the corpus-unique spec name (the protocol name by default).
	Name string `json:"name"`
	// Canonical is the dsl.Format rendering — the dedup key.
	Canonical string `json:"canonical"`
	// Family identifies the protocol shape (domain, window, legitimacy):
	// entries sharing a Family share a skeleton LTG and a verdict memo
	// during fleet verification.
	Family string `json:"family"`
	// Deps names the entries this one depends on. Editing a dependency
	// dirties this entry.
	Deps []string `json:"deps,omitempty"`
	// Dirty marks the entry for (re-)verification.
	Dirty bool `json:"dirty"`
	// Verified reports that a fleet run has produced a verdict for the
	// current content.
	Verified bool `json:"verified"`
	// SelfStabilizing and Verdict record the last verification outcome.
	SelfStabilizing bool      `json:"self_stabilizing,omitempty"`
	Verdict         string    `json:"verdict,omitempty"`
	IngestedAt      time.Time `json:"ingested_at"`
	VerifiedAt      time.Time `json:"verified_at,omitempty"`
}

// Store is the corpus: a name-indexed set of entries with a dependency
// graph, a shared compiled-spec cache, and per-family memo state. All
// methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string            // "" = in-memory only
	entries map[string]*Entry // by Name
	byCanon map[string]string // canonical -> Name (the dedup index)

	specs *verify.SpecCache
	memos *FamilyMemos
}

// storeIndex is the on-disk form of the corpus.
type storeIndex struct {
	Entries []*Entry `json:"entries"`
}

// Open loads (or initializes) a corpus rooted at dir. An empty dir keeps
// the corpus in memory — useful for tests and benchmarks.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		entries: map[string]*Entry{},
		byCanon: map[string]string{},
		specs:   verify.NewSpecCache(0),
		memos:   NewFamilyMemos(0),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var idx storeIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("corpus index %s: %w", s.indexPath(), err)
	}
	for _, e := range idx.Entries {
		s.entries[e.Name] = e
		s.byCanon[e.Canonical] = e.Name
	}
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

// Save persists the index (atomic temp + rename). A no-op for in-memory
// stores.
func (s *Store) Save() error {
	if s.dir == "" {
		return nil
	}
	s.mu.Lock()
	idx := storeIndex{Entries: s.sortedLocked()}
	data, err := json.MarshalIndent(&idx, "", "  ")
	s.mu.Unlock()
	if err != nil {
		return err
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.indexPath())
}

// sortedLocked returns the entries sorted by name; s.mu must be held.
func (s *Store) sortedLocked() []*Entry {
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// specID is the stable content address of a canonical rendering.
func specID(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])[:12]
}

// Ingest adds or updates one spec. The name defaults to the protocol name
// declared in the source; deps name corpus entries this spec depends on
// (they need not exist yet — edges to absent entries are inert until the
// dependency is ingested). Re-ingesting identical content is Unchanged;
// changed content is Updated and dirties the entry plus every entry that
// transitively depends on it.
func (s *Store) Ingest(name, src string, deps ...string) (*Entry, Outcome, error) {
	cs, _, err := s.specs.Compile(src)
	if err != nil {
		return nil, 0, err
	}
	if name == "" {
		name = cs.Name
	}
	family := FamilyKey(cs.Protocol)

	s.mu.Lock()
	defer s.mu.Unlock()

	if e, ok := s.entries[name]; ok {
		if e.Canonical == cs.Canonical {
			// Same content; refresh the dependency edges only.
			if len(deps) > 0 {
				e.Deps = append([]string(nil), deps...)
			}
			return e.clone(), Unchanged, nil
		}
		delete(s.byCanon, e.Canonical)
		e.ID = specID(cs.Canonical)
		e.Canonical = cs.Canonical
		e.Family = family
		if len(deps) > 0 {
			e.Deps = append([]string(nil), deps...)
		}
		e.Verified = false
		e.SelfStabilizing = false
		e.Verdict = ""
		e.IngestedAt = time.Now()
		s.byCanon[cs.Canonical] = name
		s.markDirtyLocked(name)
		return e.clone(), Updated, nil
	}

	// Dedup on content: the same canonical rendering under a second name
	// folds onto the existing entry.
	if prior, ok := s.byCanon[cs.Canonical]; ok {
		return s.entries[prior].clone(), Unchanged, nil
	}

	e := &Entry{
		ID:         specID(cs.Canonical),
		Name:       name,
		Canonical:  cs.Canonical,
		Family:     family,
		Deps:       append([]string(nil), deps...),
		Dirty:      true,
		IngestedAt: time.Now(),
	}
	s.entries[name] = e
	s.byCanon[cs.Canonical] = name
	return e.clone(), Added, nil
}

// markDirtyLocked dirties name and its transitive reverse-dependency
// closure; s.mu must be held.
func (s *Store) markDirtyLocked(name string) {
	// Reverse adjacency over the current dependency edges.
	rev := map[string][]string{}
	for _, e := range s.entries {
		for _, d := range e.Deps {
			rev[d] = append(rev[d], e.Name)
		}
	}
	queue := []string{name}
	seen := map[string]bool{}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		if e, ok := s.entries[n]; ok {
			e.Dirty = true
			e.Verified = false
		}
		queue = append(queue, rev[n]...)
	}
}

// Entry returns a copy of the named entry.
func (s *Store) Entry(name string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return Entry{}, false
	}
	return *e.clone(), true
}

// Entries returns copies of all entries, sorted by name.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	sorted := s.sortedLocked()
	out := make([]Entry, len(sorted))
	for i, e := range sorted {
		out[i] = *e.clone()
	}
	return out
}

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// RecordVerdict folds an externally produced verdict — a remote
// verification service, typically — into the named entry, clearing its
// dirty bit. canonical guards against racing edits: the verdict applies
// only while the entry's content still matches, and the return value
// reports whether it did. Call Save afterwards to persist.
func (s *Store) RecordVerdict(name, canonical, verdict string, selfStabilizing bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok || e.Canonical != canonical {
		return false
	}
	e.Dirty = false
	e.Verified = true
	e.SelfStabilizing = selfStabilizing
	e.Verdict = verdict
	e.VerifiedAt = time.Now()
	return true
}

// Dirty returns the names of entries pending (re-)verification, sorted.
func (s *Store) Dirty() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, e := range s.entries {
		if e.Dirty || !e.Verified {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out
}

func (e *Entry) clone() *Entry {
	c := *e
	c.Deps = append([]string(nil), e.Deps...)
	return &c
}
