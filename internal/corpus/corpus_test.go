package corpus

import (
	"context"
	"strings"
	"testing"

	"paramring/internal/protogen"
)

const tinySpec = `protocol tiny
domain 2
window 0 1
legit x[0] == x[1]
action copy: x[0] != x[1] -> x[0] := x[1]
`

// tinyVariant is the same protocol under different formatting.
const tinyVariant = `protocol tiny
# comment
domain 2
window  0  1
legit ((x[0]) == (x[1]))
action copy: (x[0] != x[1]) -> x[0] := x[1]
`

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIngestDedupAndStableIDs(t *testing.T) {
	s := mustOpen(t, "")
	e1, out, err := s.Ingest("", tinySpec)
	if err != nil || out != Added {
		t.Fatalf("first ingest: %v outcome=%v", err, out)
	}
	if e1.Name != "tiny" {
		t.Fatalf("name defaulted to %q, want the protocol name", e1.Name)
	}
	// The formatting variant canonicalizes identically: same entry, no new
	// state, stable ID.
	e2, out, err := s.Ingest("", tinyVariant)
	if err != nil || out != Unchanged {
		t.Fatalf("variant ingest: %v outcome=%v", err, out)
	}
	if e2.ID != e1.ID || s.Len() != 1 {
		t.Fatalf("variant fragmented the corpus: id %s vs %s, len %d", e2.ID, e1.ID, s.Len())
	}
	// The same content under an explicit different name dedups too.
	e3, out, err := s.Ingest("tiny-copy", tinySpec)
	if err != nil || out != Unchanged || e3.ID != e1.ID || s.Len() != 1 {
		t.Fatalf("renamed duplicate not deduped: %v outcome=%v len=%d", err, out, s.Len())
	}
	// A broken spec never lands.
	if _, _, err := s.Ingest("", "not a spec"); err == nil {
		t.Fatal("broken spec ingested")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d after error, want 1", s.Len())
	}
}

func TestUpdateDirtiesReverseDependencyClosure(t *testing.T) {
	s := mustOpen(t, "")
	mk := func(name, legit string) string {
		return "protocol " + name + "\ndomain 2\nwindow 0 1\nlegit " + legit + "\n"
	}
	// base <- mid <- leaf, plus an unrelated spec.
	for _, in := range []struct {
		name, src string
		deps      []string
	}{
		{"base", mk("base", "x[0] == x[1]"), nil},
		{"mid", mk("mid", "x[0] == x[1]"), []string{"base"}},
		{"leaf", mk("leaf", "x[0] == x[1]"), []string{"mid"}},
		{"other", mk("other", "x[0] != x[1]"), nil},
	} {
		if _, _, err := s.Ingest(in.name, in.src, in.deps...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.VerifyAll(context.Background(), FleetOptions{}); err != nil {
		t.Fatal(err)
	}
	if dirty := s.Dirty(); len(dirty) != 0 {
		t.Fatalf("dirty after full run: %v", dirty)
	}

	// Editing base dirties base, mid, leaf — not other.
	if _, out, err := s.Ingest("base", mk("base", "x[0] != x[1]")); err != nil || out != Updated {
		t.Fatalf("edit: %v outcome=%v", err, out)
	}
	dirty := s.Dirty()
	if strings.Join(dirty, ",") != "base,leaf,mid" {
		t.Fatalf("dirty closure = %v, want [base leaf mid]", dirty)
	}
	rep, err := s.VerifyAll(context.Background(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduled != 3 || rep.Skipped != 1 {
		t.Fatalf("re-run scheduled %d skipped %d, want 3/1", rep.Scheduled, rep.Skipped)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir)
	if _, _, err := s1.Ingest("", tinySpec); err != nil {
		t.Fatal(err)
	}
	rep, err := s1.VerifyAll(context.Background(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduled != 1 {
		t.Fatalf("scheduled %d, want 1", rep.Scheduled)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	e, ok := s2.Entry("tiny")
	if !ok || !e.Verified || e.Dirty {
		t.Fatalf("reloaded entry: %+v ok=%v", e, ok)
	}
	if want, _ := s1.Entry("tiny"); e.ID != want.ID || e.Verdict != want.Verdict {
		t.Fatalf("reloaded entry diverged: %+v vs %+v", e, want)
	}
	// Nothing to re-verify after a reload.
	rep2, err := s2.VerifyAll(context.Background(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Scheduled != 0 || rep2.Skipped != 1 {
		t.Fatalf("reloaded store re-verified: %+v", rep2)
	}
}

// ingestSweep generates and ingests a sweep, returning the specs.
func ingestSweep(t *testing.T, s *Store, sw *protogen.Sweep) []protogen.SweepSpec {
	t.Helper()
	specs, err := sw.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if _, _, err := s.Ingest(sp.Name, sp.Source, sp.Deps...); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
	}
	return specs
}

// TestFleetSweep200 is the acceptance test: a 200-spec sweep verifies with
// shared-memo hits, and re-running after editing one spec re-verifies only
// that spec's dirty closure.
func TestFleetSweep200(t *testing.T) {
	sw := &protogen.Sweep{
		Seed: 7,
		Families: []protogen.SweepFamily{
			{Name: "f0", Domain: 3, Lo: -1, Hi: 0, Variants: 49},
			{Name: "f1", Domain: 3, Lo: -1, Hi: 0, Variants: 49, Nondet: true},
			{Name: "f2", Domain: 2, Lo: -1, Hi: 1, Variants: 49},
			{Name: "f3", Domain: 2, Lo: 0, Hi: 1, Variants: 49, MovePercent: 70},
		},
	}
	s := mustOpen(t, "")
	specs := ingestSweep(t, s, sw)
	if len(specs) != 200 {
		t.Fatalf("sweep generated %d specs, want 200", len(specs))
	}
	rep, err := s.VerifyAll(context.Background(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduled < 200 {
		t.Fatalf("scheduled %d of %d (dedup may fold identical variants, but not this many)", rep.Scheduled, len(specs))
	}
	if rep.Failed != 0 {
		t.Fatalf("%d specs failed: %+v", rep.Failed, rep.Results)
	}
	if rep.MemoHits == 0 {
		t.Fatalf("no shared-memo hits across %d specs in %d families (misses=%d): sharing bought nothing",
			rep.Scheduled, rep.Families, rep.MemoMisses)
	}
	if rep.Families != 4 {
		t.Fatalf("families = %d, want 4", rep.Families)
	}

	// Edit exactly one variant (a semantic change: the name is part of the
	// canonical rendering). Only it re-verifies — it has no dependents.
	target := "f0-v007"
	var src string
	for _, sp := range specs {
		if sp.Name == target {
			src = strings.Replace(sp.Source, "protocol "+target, "protocol "+target+"x", 1)
		}
	}
	if src == "" {
		t.Fatalf("sweep has no %s", target)
	}
	if _, out, err := s.Ingest(target, src); err != nil || out != Updated {
		t.Fatalf("edit: %v outcome=%v", err, out)
	}
	rep2, err := s.VerifyAll(context.Background(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Scheduled != 1 || rep2.Results[0].Name != target {
		t.Fatalf("dirty re-run scheduled %d (%v), want exactly [%s]", rep2.Scheduled, rep2.Results, target)
	}

	// Editing a family base dirties the whole family: base + its variants.
	baseSrc := strings.Replace(specsByName(specs, "f2-base"), "protocol f2-base", "protocol f2-basex", 1)
	if _, out, err := s.Ingest("f2-base", baseSrc); err != nil || out != Updated {
		t.Fatalf("base edit: %v outcome=%v", err, out)
	}
	rep3, err := s.VerifyAll(context.Background(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Scheduled != 50 {
		t.Fatalf("base edit re-verified %d specs, want the 50-member family", rep3.Scheduled)
	}
	for _, r := range rep3.Results {
		if !strings.HasPrefix(r.Name, "f2-") {
			t.Fatalf("base edit leaked outside the family: %s re-verified", r.Name)
		}
	}
}

func specsByName(specs []protogen.SweepSpec, name string) string {
	for _, sp := range specs {
		if sp.Name == name {
			return sp.Source
		}
	}
	return ""
}

// Shared state must never change a verdict: an isolated run over the same
// corpus produces identical per-spec results.
func TestFleetIsolatedMatchesShared(t *testing.T) {
	sw := &protogen.Sweep{
		Seed:     99,
		Families: []protogen.SweepFamily{{Name: "g", Domain: 3, Lo: -1, Hi: 0, Variants: 20}},
	}
	shared := mustOpen(t, "")
	ingestSweep(t, shared, sw)
	isolated := mustOpen(t, "")
	ingestSweep(t, isolated, sw)

	repS, err := shared.VerifyAll(context.Background(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repI, err := isolated.VerifyAll(context.Background(), FleetOptions{Isolated: true})
	if err != nil {
		t.Fatal(err)
	}
	if repI.MemoHits != 0 || repI.MemoMisses != 0 {
		t.Fatalf("isolated run touched the shared memo: %d/%d", repI.MemoHits, repI.MemoMisses)
	}
	if len(repS.Results) != len(repI.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(repS.Results), len(repI.Results))
	}
	for i := range repS.Results {
		a, b := repS.Results[i], repI.Results[i]
		if a.Name != b.Name || a.Verdict != b.Verdict || a.SelfStabilizing != b.SelfStabilizing || a.Err != b.Err {
			t.Fatalf("verdict differs under sharing: %+v vs %+v", a, b)
		}
	}
}

func TestFamilyMemosBoundedAndKeyed(t *testing.T) {
	sw := &protogen.Sweep{
		Seed: 3,
		Families: []protogen.SweepFamily{
			{Name: "k0", Domain: 3, Lo: -1, Hi: 0, Variants: 2},
			{Name: "k1", Domain: 2, Lo: -1, Hi: 0, Variants: 2},
			{Name: "k2", Domain: 2, Lo: 0, Hi: 1, Variants: 2},
		},
	}
	s := mustOpen(t, "")
	ingestSweep(t, s, sw)
	if _, err := s.VerifyAll(context.Background(), FleetOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := s.memos.Len(); got != 3 {
		t.Fatalf("families registered = %d, want 3 (one per shape)", got)
	}
}

func TestVerifyAllContextCancel(t *testing.T) {
	s := mustOpen(t, "")
	sw := &protogen.Sweep{
		Seed:     1,
		Families: []protogen.SweepFamily{{Name: "c", Domain: 2, Lo: -1, Hi: 0, Variants: 10}},
	}
	ingestSweep(t, s, sw)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.VerifyAll(ctx, FleetOptions{}); err == nil {
		t.Fatal("cancelled context must surface as an error")
	}
}
