package corpus

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"paramring/internal/verify"
)

// FleetOptions tunes a corpus-wide verification run.
type FleetOptions struct {
	// Workers is the number of concurrent verification jobs (<= 0 selects
	// runtime.GOMAXPROCS(0)).
	Workers int
	// Verify configures each individual verification. Its Check options
	// gain the per-family shared skeleton and memo unless Isolated is set
	// or the caller pre-filled a skeleton.
	Verify verify.Options
	// Force schedules every entry, clean or not.
	Force bool
	// Isolated disables the per-family memo sharing: every job builds its
	// own graphs. The fleet benchmark uses it as the comparison baseline.
	Isolated bool
}

// SpecResult is the per-spec outcome of a fleet run.
type SpecResult struct {
	Name            string `json:"name"`
	ID              string `json:"id"`
	Family          string `json:"family"`
	SelfStabilizing bool   `json:"self_stabilizing"`
	Verdict         string `json:"verdict"`
	Err             string `json:"error,omitempty"`
	ElapsedNS       int64  `json:"elapsed_ns"`
}

// FleetReport aggregates a corpus-wide run.
type FleetReport struct {
	// Total is the corpus size; Scheduled the entries verified this run;
	// Skipped the clean entries left alone; Failed the scheduled entries
	// whose verification errored.
	Total     int `json:"total"`
	Scheduled int `json:"scheduled"`
	Skipped   int `json:"skipped"`
	Failed    int `json:"failed"`
	// Families is the number of distinct protocol shapes scheduled.
	Families  int   `json:"families"`
	ElapsedNS int64 `json:"elapsed_ns"`
	// SpecsPerSec is Scheduled over the wall-clock elapsed time.
	SpecsPerSec float64 `json:"specs_per_sec"`
	// MemoHits / MemoMisses are the shared Theorem 5.14 verdict-memo
	// deltas for this run (zero when Isolated).
	MemoHits   uint64 `json:"memo_hits"`
	MemoMisses uint64 `json:"memo_misses"`
	// SpecCacheHits / SpecCacheMisses are the compiled-spec cache deltas
	// for this run.
	SpecCacheHits   uint64 `json:"spec_cache_hits"`
	SpecCacheMisses uint64 `json:"spec_cache_misses"`
	// Results holds one entry per scheduled spec, sorted by name.
	Results []SpecResult `json:"results"`
}

// VerifyAll runs the verification lanes over every dirty or unverified
// entry (every entry under Force), sharing the compiled-spec cache and the
// per-family skeleton/memo state across jobs. The store is updated with
// each verdict; call Save afterwards to persist. Context cancellation
// stops scheduling new jobs and returns ctx.Err after in-flight jobs
// drain.
func (s *Store) VerifyAll(ctx context.Context, opts FleetOptions) (*FleetReport, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	s.mu.Lock()
	total := len(s.entries)
	var scheduled []*Entry
	families := map[string]bool{}
	for _, e := range s.entries {
		if opts.Force || e.Dirty || !e.Verified {
			scheduled = append(scheduled, e.clone())
			families[e.Family] = true
		}
	}
	s.mu.Unlock()
	sort.Slice(scheduled, func(i, j int) bool { return scheduled[i].Name < scheduled[j].Name })

	memoHits0, memoMisses0 := s.memos.Stats()
	spec0 := s.specs.Stats()
	start := time.Now()

	results := make([]SpecResult, len(scheduled))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = s.verifyOne(ctx, scheduled[i], opts)
			}
		}()
	}
	var ctxErr error
dispatch:
	for i := range scheduled {
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			results = results[:i]
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()

	elapsed := time.Since(start)
	memoHits1, memoMisses1 := s.memos.Stats()
	spec1 := s.specs.Stats()
	rep := &FleetReport{
		Total:           total,
		Scheduled:       len(results),
		Skipped:         total - len(scheduled),
		Families:        len(families),
		ElapsedNS:       elapsed.Nanoseconds(),
		MemoHits:        memoHits1 - memoHits0,
		MemoMisses:      memoMisses1 - memoMisses0,
		SpecCacheHits:   spec1.Hits - spec0.Hits,
		SpecCacheMisses: spec1.Misses - spec0.Misses,
		Results:         results,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.SpecsPerSec = float64(rep.Scheduled) / secs
	}
	for _, r := range rep.Results {
		if r.Err != "" {
			rep.Failed++
		}
	}
	if ctxErr != nil {
		return rep, ctxErr
	}
	return rep, nil
}

// verifyOne runs one entry through the pipeline and folds the verdict back
// into the store.
func (s *Store) verifyOne(ctx context.Context, e *Entry, opts FleetOptions) SpecResult {
	res := SpecResult{Name: e.Name, ID: e.ID, Family: e.Family}
	t0 := time.Now()
	cs, _, err := s.specs.Compile(e.Canonical)
	if err != nil {
		res.Err = err.Error()
		res.ElapsedNS = time.Since(t0).Nanoseconds()
		return res
	}
	vopts := opts.Verify
	if !opts.Isolated {
		vopts.Check = s.memos.CheckOptions(cs.Protocol, vopts.Check)
	}
	rep, err := verify.CheckCtx(ctx, cs.Protocol, vopts)
	res.ElapsedNS = time.Since(t0).Nanoseconds()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.SelfStabilizing = rep.SelfStabilizing
	res.Verdict = fmt.Sprintf("deadlock=%s livelock=%s", rep.Deadlock, rep.Livelock)

	s.mu.Lock()
	if live, ok := s.entries[e.Name]; ok && live.Canonical == e.Canonical {
		live.Dirty = false
		live.Verified = true
		live.SelfStabilizing = res.SelfStabilizing
		live.Verdict = res.Verdict
		live.VerifiedAt = time.Now()
	}
	s.mu.Unlock()
	return res
}
