package trace

import (
	"strings"
	"testing"

	"paramring/internal/explicit"
	"paramring/internal/protocols"
)

func TestComputationString(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 4)
	c := Computation{
		In: in,
		States: []uint64{
			in.Encode([]int{1, 0, 0, 0}),
			in.Encode([]int{1, 1, 0, 0}),
		},
		Procs: []int{1},
	}
	got := c.String()
	if got != "1000 -P1-> 1100" {
		t.Fatalf("String = %q", got)
	}
	c.Procs = nil
	if c.String() != "1000 -> 1100" {
		t.Fatalf("String without procs = %q", c.String())
	}
}

func TestComputationIsCycle(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 4)
	states := [][]int{
		{1, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 0}, {0, 1, 1, 0},
		{0, 1, 1, 1}, {0, 0, 1, 1}, {1, 0, 1, 1}, {1, 0, 0, 1},
	}
	c := Computation{In: in}
	for _, s := range states {
		c.States = append(c.States, in.Encode(s))
	}
	if !c.IsCycle() {
		t.Fatal("the paper's livelock must be a cycle")
	}
	c.States = c.States[:3]
	if c.IsCycle() {
		t.Fatal("prefix is not a cycle")
	}
	if (Computation{In: in}).IsCycle() {
		t.Fatal("empty computation is not a cycle")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("K", "verdict")
	tb.AddRow(4, true)
	tb.AddRow(12, "free")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "K ") || !strings.Contains(lines[0], "verdict") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "4") || !strings.Contains(lines[3], "free") {
		t.Fatalf("rows wrong:\n%s", out)
	}
}
