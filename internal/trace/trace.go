// Package trace renders computations, livelock cycles and experiment tables
// as text — the presentation layer for the CLI tools and the
// figure-regeneration harness.
package trace

import (
	"fmt"
	"strings"

	"paramring/internal/explicit"
)

// Computation is a sequence of global states, optionally annotated with the
// executing process per step.
type Computation struct {
	In     *explicit.Instance
	States []uint64
	// Procs[i] executed the transition States[i] -> States[i+1]; may be nil.
	Procs []int
}

// String renders "1000 -P1-> 1100 -P0-> 0100" (paper Example 5.2 style).
func (c Computation) String() string {
	var b strings.Builder
	for i, s := range c.States {
		if i > 0 {
			if c.Procs != nil && i-1 < len(c.Procs) {
				fmt.Fprintf(&b, " -P%d-> ", c.Procs[i-1])
			} else {
				b.WriteString(" -> ")
			}
		}
		b.WriteString(c.In.Format(s))
	}
	return b.String()
}

// IsCycle reports whether the last state transitions back to the first.
func (c Computation) IsCycle() bool {
	if len(c.States) < 1 {
		return false
	}
	return c.In.HasTransition(c.States[len(c.States)-1], c.States[0])
}

// Table is a minimal text table writer for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
