package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadProtocolZoo(t *testing.T) {
	p, err := LoadProtocol("agreement", "")
	if err != nil || p.Name() != "agreement" {
		t.Fatalf("p=%v err=%v", p, err)
	}
}

func TestLoadProtocolErrors(t *testing.T) {
	if _, err := LoadProtocol("", ""); err == nil {
		t.Fatal("empty args must error")
	}
	if _, err := LoadProtocol("nope", ""); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("unexpected: %v", err)
	}
	if _, err := LoadProtocol("agreement", "x.gc"); err == nil {
		t.Fatal("both args must error")
	}
	if _, err := LoadProtocol("", "/does/not/exist.gc"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadProtocolFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.gc")
	src := "protocol custom\ndomain 2\nwindow -1 0\nlegit x[0] == x[-1]\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProtocol("", path)
	if err != nil || p.Name() != "custom" {
		t.Fatalf("p=%v err=%v", p, err)
	}
}

func TestZooNamesSorted(t *testing.T) {
	names := ZooNames()
	if !strings.Contains(names, "agreement") || !strings.Contains(names, "mis") {
		t.Fatalf("names = %q", names)
	}
	parts := strings.Split(names, ", ")
	for i := 1; i < len(parts); i++ {
		if parts[i] < parts[i-1] {
			t.Fatal("names not sorted")
		}
	}
}
