package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paramring/internal/verify"
)

func TestLoadProtocolZoo(t *testing.T) {
	p, err := LoadProtocol("agreement", "")
	if err != nil || p.Name() != "agreement" {
		t.Fatalf("p=%v err=%v", p, err)
	}
}

func TestLoadProtocolErrors(t *testing.T) {
	if _, err := LoadProtocol("", ""); err == nil {
		t.Fatal("empty args must error")
	}
	if _, err := LoadProtocol("nope", ""); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("unexpected: %v", err)
	}
	if _, err := LoadProtocol("agreement", "x.gc"); err == nil {
		t.Fatal("both args must error")
	}
	if _, err := LoadProtocol("", "/does/not/exist.gc"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadProtocolFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.gc")
	src := "protocol custom\ndomain 2\nwindow -1 0\nlegit x[0] == x[-1]\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProtocol("", path)
	if err != nil || p.Name() != "custom" {
		t.Fatalf("p=%v err=%v", p, err)
	}
}

func TestZooNamesSorted(t *testing.T) {
	names := ZooNames()
	if !strings.Contains(names, "agreement") || !strings.Contains(names, "mis") {
		t.Fatalf("names = %q", names)
	}
	parts := strings.Split(names, ", ")
	for i := 1; i < len(parts); i++ {
		if parts[i] < parts[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

// TestVerdictExitCode pins the verdict half of the exit-code contract.
// Exit 4 (cross-lane disagreement) cannot be produced honestly by any
// shipped protocol — that is the point of three independent lanes — so it
// is exercised here on a hand-built report rather than end to end.
func TestVerdictExitCode(t *testing.T) {
	cases := []struct {
		name string
		rep  verify.Report
		want int
	}{
		{"proved", verify.Report{Deadlock: verify.Proved, Livelock: verify.Proved}, 0},
		{"refuted is settled too", verify.Report{Deadlock: verify.Refuted, Livelock: verify.Proved}, 0},
		{"livelock open", verify.Report{Deadlock: verify.Proved, Livelock: verify.Inconclusive}, 3},
		{"deadlock open", verify.Report{Deadlock: verify.Inconclusive, Livelock: verify.Refuted}, 3},
		{"disagreement dominates settled verdicts",
			verify.Report{Deadlock: verify.Proved, Livelock: verify.Proved,
				Disagreements: []string{"K=4: explicit livelock contradicts invariant-lane Holds"}}, 4},
		{"disagreement dominates inconclusive",
			verify.Report{Disagreements: []string{"x"}}, 4},
	}
	for _, c := range cases {
		if got := VerdictExitCode(&c.rep); got != c.want {
			t.Errorf("%s: exit = %d, want %d", c.name, got, c.want)
		}
	}
}
