// Package cli holds helpers shared by the command-line tools, including
// the one place where they exit: every cmd binary reports failures as a
// single "tool: message" line on stderr with a non-zero status — never a
// panic stack trace — so malformed inputs are script-friendly to detect.
package cli

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"paramring/internal/core"
	"paramring/internal/dsl"
	"paramring/internal/protocols"
	"paramring/internal/verify"
)

// Exit prints one "tool: error" line to stderr and exits with code.
// By convention the tools use code 2 for usage/input errors (unknown
// protocol, unparsable spec) and 1 for runtime failures.
func Exit(tool string, code int, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(code)
}

// ExitOnPanic converts a panic into a one-line error exit (status 1). The
// engine panics on spec-level contract violations that only surface once a
// concrete instance runs (e.g. an action writing outside the domain — see
// explicit.SuccessorsDetailed); deferring this at the top of main keeps
// such inputs from dumping a stack trace at users:
//
//	func main() {
//	    defer cli.ExitOnPanic("lrmc")
//	    ...
//	}
func ExitOnPanic(tool string) {
	if r := recover(); r != nil {
		Exit(tool, 1, fmt.Errorf("%v", r))
	}
}

// VerdictExitCode maps a finished verification report onto the verdict
// half of the tools' exit-code contract (the error half stays with Exit:
// 1 for runtime failures, 2 for usage errors):
//
//	0 — every property settled conclusively (proved or refuted) by some
//	    lane, and the lanes that ran agree;
//	3 — at least one property is inconclusive in every lane that ran;
//	4 — cross-lane disagreement: two lanes reached conclusive,
//	    conflicting verdicts (or a certificate failed its independent
//	    re-check) — a tool bug, never a protocol property.
//
// Disagreement dominates: a report with conflicts exits 4 even when every
// verdict looks settled, because none of them can be trusted.
func VerdictExitCode(rep *verify.Report) int {
	if len(rep.Disagreements) > 0 {
		return 4
	}
	if rep.Deadlock == verify.Inconclusive || rep.Livelock == verify.Inconclusive {
		return 3
	}
	return 0
}

// LoadProtocol resolves a protocol from either a zoo name or a guarded-
// commands file (exactly one of name/file must be non-empty).
func LoadProtocol(name, file string) (*core.Protocol, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("specify either -protocol or -file, not both")
	case file != "":
		return dsl.ParseFile(file)
	case name != "":
		p, ok := protocols.All()[name]
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q; available: %s", name, ZooNames())
		}
		return p, nil
	default:
		return nil, fmt.Errorf("specify -protocol <name> (available: %s) or -file <path.gc>", ZooNames())
	}
}

// ZooNames lists the built-in protocol names, sorted.
func ZooNames() string {
	zoo := protocols.All()
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
