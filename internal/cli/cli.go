// Package cli holds helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"sort"
	"strings"

	"paramring/internal/core"
	"paramring/internal/dsl"
	"paramring/internal/protocols"
)

// LoadProtocol resolves a protocol from either a zoo name or a guarded-
// commands file (exactly one of name/file must be non-empty).
func LoadProtocol(name, file string) (*core.Protocol, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("specify either -protocol or -file, not both")
	case file != "":
		return dsl.ParseFile(file)
	case name != "":
		p, ok := protocols.All()[name]
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q; available: %s", name, ZooNames())
		}
		return p, nil
	default:
		return nil, fmt.Errorf("specify -protocol <name> (available: %s) or -file <path.gc>", ZooNames())
	}
}

// ZooNames lists the built-in protocol names, sorted.
func ZooNames() string {
	zoo := protocols.All()
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
