package faultinject

import (
	"sync"
	"testing"
)

// TestDeterministicAcrossPlans: same seed + same per-site call sequence =>
// identical decision sequences, regardless of interleaving with other
// sites. This is the property the chaos suite's reproducibility rests on.
func TestDeterministicAcrossPlans(t *testing.T) {
	mk := func() *Plan {
		p := New(42)
		p.Arm("panic", 0.3)
		p.ArmEvery("cache", 3)
		return p
	}
	a, b := mk(), mk()
	// Interleave a third site into plan b only; "panic" and "cache"
	// decisions must be unaffected because decisions are per-site.
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			b.Fire("noise")
		}
		if a.Fire("panic") != b.Fire("panic") {
			t.Fatalf("panic decision %d diverged", i)
		}
		if a.Fire("cache") != b.Fire("cache") {
			t.Fatalf("cache decision %d diverged", i)
		}
	}
	if a.Count("panic") == 0 || a.Count("panic") == 1000 {
		t.Fatalf("rate 0.3 fired %d/1000 times — degenerate", a.Count("panic"))
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	a.Arm("s", 0.5)
	b.Arm("s", 0.5)
	same := 0
	for i := 0; i < 256; i++ {
		if a.Fire("s") == b.Fire("s") {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestArmEvery(t *testing.T) {
	p := New(7)
	p.ArmEvery("w", 3)
	var got []int
	for i := 1; i <= 9; i++ {
		if p.Fire("w") {
			got = append(got, i)
		}
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 6 || got[2] != 9 {
		t.Fatalf("every-3rd fired at %v, want [3 6 9]", got)
	}
	if p.Count("w") != 3 || p.Calls("w") != 9 {
		t.Fatalf("counters: fired=%d calls=%d", p.Count("w"), p.Calls("w"))
	}
}

func TestUnarmedSiteNeverFires(t *testing.T) {
	p := New(3)
	for i := 0; i < 100; i++ {
		if p.Fire("quiet") {
			t.Fatal("unarmed site fired")
		}
	}
	if p.Calls("quiet") != 100 {
		t.Fatalf("calls = %d, want 100", p.Calls("quiet"))
	}
}

// TestRateConverges: over many calls the empirical rate lands near the
// armed rate (the hash is a good mixer, not a biased one).
func TestRateConverges(t *testing.T) {
	p := New(99)
	p.Arm("r", 0.25)
	n := 20000
	for i := 0; i < n; i++ {
		p.Fire("r")
	}
	got := float64(p.Count("r")) / float64(n)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("empirical rate %.3f far from armed 0.25", got)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	p := New(5)
	p.Arm("c", 0.5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Fire("c")
			}
		}()
	}
	wg.Wait()
	if p.Calls("c") != 8000 {
		t.Fatalf("calls = %d, want 8000", p.Calls("c"))
	}
}
