package faultinject

import "testing"

// Every listed scenario must build, and the armed site must actually fire
// within a small call budget — a plan that never fires would make a chaos
// run silently vacuous.
func TestClusterPlanScenarios(t *testing.T) {
	sites := map[string]string{
		ScenarioWorkerKill:         SiteWorkerKill,
		ScenarioHeartbeatBlackhole: SiteHeartbeatBlackhole,
		ScenarioCoordinatorRestart: SiteCoordinatorCrash,
		ScenarioCachePartition:     SiteCachePartition,
	}
	for _, sc := range ClusterScenarios() {
		p, err := ClusterPlan(sc, 42)
		if err != nil {
			t.Fatalf("ClusterPlan(%s): %v", sc, err)
		}
		site, ok := sites[sc]
		if !ok {
			t.Fatalf("scenario %s missing from site map", sc)
		}
		fired := 0
		for i := 0; i < 12; i++ {
			if p.Fire(site) {
				fired++
			}
		}
		if fired == 0 {
			t.Errorf("scenario %s: site %s never fired in 12 calls", sc, site)
		}
	}
}

func TestClusterPlanUnknownScenario(t *testing.T) {
	if _, err := ClusterPlan("split-brain", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// Determinism: same scenario + seed → identical firing sequence. The
// chaos suite's reproduce-from-seed contract rests on this.
func TestClusterPlanDeterministic(t *testing.T) {
	for _, sc := range ClusterScenarios() {
		a, _ := ClusterPlan(sc, 7)
		b, _ := ClusterPlan(sc, 7)
		site := map[string]string{
			ScenarioWorkerKill:         SiteWorkerKill,
			ScenarioHeartbeatBlackhole: SiteHeartbeatBlackhole,
			ScenarioCoordinatorRestart: SiteCoordinatorCrash,
			ScenarioCachePartition:     SiteCachePartition,
		}[sc]
		for i := 0; i < 50; i++ {
			if a.Fire(site) != b.Fire(site) {
				t.Fatalf("scenario %s seed 7: decision %d diverged", sc, i)
			}
		}
	}
}
