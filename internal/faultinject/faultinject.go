// Package faultinject is a deterministic, seed-driven fault schedule for
// chaos-testing the verification service. A Plan is armed with per-site
// firing rates ("panic in 30% of engine runs", "fail every 3rd cache
// write"); each call to Fire then decides — purely as a function of the
// seed, the site name, and how many times that site has been asked —
// whether the fault triggers. Two plans with the same seed and the same
// per-site call sequence make identical decisions, so a chaos failure
// reproduces from nothing but its seed, even though the global
// interleaving across sites is scheduler-dependent.
//
// The package deliberately knows nothing about the service layer: the
// service exposes hook points (service.Hooks) and the chaos suite wires
// Plan decisions into them as closures, so the dependency points from the
// test harness down to both, never between them.
package faultinject

import (
	"fmt"
	"sync"
)

// Plan is a deterministic fault schedule. The zero value is unusable;
// create with New. All methods are safe for concurrent use.
type Plan struct {
	seed uint64

	mu    sync.Mutex
	sites map[string]*site
}

type site struct {
	// rate is the firing probability in [0,1], applied via a hash of
	// (seed, site, call index) — not a live RNG, so decision i for a site
	// is a pure function of the plan's identity.
	rate float64
	// everyN, when > 0, fires deterministically on every Nth call and
	// takes precedence over rate.
	everyN uint64
	calls  uint64
	fired  uint64
}

// New returns an empty plan for the seed. Seed 0 is valid and distinct
// from every other seed.
func New(seed int64) *Plan {
	return &Plan{seed: uint64(seed), sites: make(map[string]*site)}
}

// Arm sets the firing rate for a site: each Fire(site) call triggers with
// probability rate, decided by hashing the call index. Rates outside
// [0,1] are clamped.
func (p *Plan) Arm(siteName string, rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.siteLocked(siteName).rate = rate
}

// ArmEvery makes Fire(site) trigger on every nth call (the nth, 2nth, …);
// n <= 0 disarms the site.
func (p *Plan) ArmEvery(siteName string, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.siteLocked(siteName)
	if n <= 0 {
		s.everyN, s.rate = 0, 0
		return
	}
	s.everyN = uint64(n)
}

func (p *Plan) siteLocked(name string) *site {
	s, ok := p.sites[name]
	if !ok {
		s = &site{}
		p.sites[name] = s
	}
	return s
}

// Fire reports whether the fault at site triggers on this call. Unarmed
// sites never fire but still count calls, so arming a site mid-run keeps
// the decision sequence aligned with the call sequence.
func (p *Plan) Fire(siteName string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.siteLocked(siteName)
	s.calls++
	var hit bool
	switch {
	case s.everyN > 0:
		hit = s.calls%s.everyN == 0
	case s.rate > 0:
		// A 64-bit hash of (seed, site, call index) mapped to [0,1).
		h := splitmix64(p.seed ^ stringHash(siteName) ^ s.calls)
		hit = float64(h>>11)/(1<<53) < s.rate
	}
	if hit {
		s.fired++
	}
	return hit
}

// Count returns how many times the site has fired.
func (p *Plan) Count(siteName string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.siteLocked(siteName).fired
}

// Calls returns how many times the site has been asked.
func (p *Plan) Calls(siteName string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.siteLocked(siteName).calls
}

// String summarizes the plan for test logs.
func (p *Plan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("faultinject.Plan(seed=%d, sites=%d)", p.seed, len(p.sites))
}

// splitmix64 is the SplitMix64 finalizer — a bijective 64-bit mixer with
// full avalanche, the standard seed-expansion hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stringHash is FNV-1a, inlined to keep the package dependency-free.
func stringHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
