package faultinject

import "fmt"

// Cluster fault scenarios. Each names a failure domain in the
// coordinator/worker topology (see ARCHITECTURE.md, "Failure domains");
// ClusterPlan arms a Plan's sites for that scenario, and the chaos suite
// wires the armed sites into the service's cluster seams. The site names
// are a contract with the suite, not just labels:
//
//	worker-kill          the worker's attempt hangs past the lease TTL and
//	                     its heartbeats stop — the process-crash shape
//	heartbeat-blackhole  heartbeats are dropped but the attempt keeps
//	                     running — the network-partition shape (the result
//	                     arrives late and must be dropped)
//	coordinator-restart  the coordinator crashes mid-flight and must
//	                     recover leases from the journal on restart
//	cache-partition      federated cache peers become unreachable; lookups
//	                     must degrade to local misses, never fail
const (
	ScenarioWorkerKill         = "worker-kill"
	ScenarioHeartbeatBlackhole = "heartbeat-blackhole"
	ScenarioCoordinatorRestart = "coordinator-restart"
	ScenarioCachePartition     = "cache-partition"
)

// ClusterScenarios lists every cluster fault scenario, in the order CI's
// chaos matrix runs them.
func ClusterScenarios() []string {
	return []string{
		ScenarioWorkerKill,
		ScenarioHeartbeatBlackhole,
		ScenarioCoordinatorRestart,
		ScenarioCachePartition,
	}
}

// Cluster site names armed by ClusterPlan. SiteWorkerKill and
// SiteHeartbeatBlackhole are asked once per dispatched attempt;
// SiteCoordinatorCrash once per completed job (firing crashes the
// coordinator after that completion); SiteCachePartition once per
// federated cache call to a peer.
const (
	SiteWorkerKill         = "cluster/worker-kill"
	SiteHeartbeatBlackhole = "cluster/heartbeat-blackhole"
	SiteCoordinatorCrash   = "cluster/coordinator-crash"
	SiteCachePartition     = "cluster/cache-partition"
)

// ClusterPlan builds the deterministic fault schedule for one cluster
// chaos scenario. The rates are chosen so a small job batch exercises the
// scenario's failover path at least once without drowning the run:
// kill/blackhole fire on every 3rd attempt (deterministic, so the suite
// can predict exactly which jobs fail over), a coordinator crash fires on
// the 2nd completion, and a cache partition drops every peer call.
func ClusterPlan(scenario string, seed int64) (*Plan, error) {
	p := New(seed)
	switch scenario {
	case ScenarioWorkerKill:
		p.ArmEvery(SiteWorkerKill, 3)
	case ScenarioHeartbeatBlackhole:
		p.ArmEvery(SiteHeartbeatBlackhole, 3)
	case ScenarioCoordinatorRestart:
		p.ArmEvery(SiteCoordinatorCrash, 2)
	case ScenarioCachePartition:
		p.Arm(SiteCachePartition, 1)
	default:
		return nil, fmt.Errorf("faultinject: unknown cluster scenario %q", scenario)
	}
	return p, nil
}
