package clitest

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildLrverify compiles the lrverify binary once into a temp dir so exit
// codes survive intact — `go run` collapses every non-zero child status to
// its own exit 1, which would make the 2/3/4 contract unobservable.
func buildLrverify(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lrverify")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/lrverify")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build lrverify: %v\n%s", err, out)
	}
	return bin
}

// runCode executes the prebuilt binary and returns (combined output, exit
// code). A start failure (not an ExitError) fails the test.
func runCode(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("lrverify %v did not start: %v\n%s", args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestLrverifyExitCodeContract pins the documented verdict exit codes:
// 0 = settled and agreed, 2 = usage error, 3 = inconclusive in every lane
// that ran. (4 = lane disagreement needs an injected tool bug and is
// covered by the cli.VerdictExitCode unit test plus the verify-level
// disagreement-injection test.)
func TestLrverifyExitCodeContract(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildLrverify(t)

	// Settled by the lanes together: exit 0. matchingA's livelock-freedom
	// is beyond Theorem 5.14 (bidirectional, too many t-arcs) but the
	// invariant lane certifies it for every K.
	out, code := runCode(t, bin, "-protocol", "matchingA")
	if code != 0 {
		t.Fatalf("matchingA exit = %d, want 0\n%s", code, out)
	}
	requireContains(t, out,
		"per-lane verdicts:",
		"invariant lane (certified, all K): deadlock proved, livelock proved",
		"=> livelock-freedom for EVERY K settled by this lane")

	// Refuted is also settled: agreement-both has a real livelock
	// (confirmed witness at K=3), so every property is conclusive.
	out, code = runCode(t, bin, "-protocol", "agreement-both")
	if code != 0 {
		t.Fatalf("agreement-both exit = %d, want 0\n%s", code, out)
	}
	requireContains(t, out, "witness CONFIRMED: real livelock at K=3")

	// Usage errors stay exit 2: unknown protocol, unknown lane, and an
	// attempt to switch off the theorem backbone.
	for _, args := range [][]string{
		{"-protocol", "not-a-protocol"},
		{"-protocol", "matchingA", "-lanes", "theorem,bogus"},
		{"-protocol", "matchingA", "-lanes", "invariant"},
	} {
		if out, code := runCode(t, bin, args...); code != 2 {
			t.Fatalf("%v exit = %d, want 2\n%s", args, code, out)
		}
	}

	// Inconclusive in every lane: a self-looping action is self-enabling
	// (Theorem 5.14 not applicable) and stutters (no decreasing potential
	// exists for the invariant lane), with too small a window for the
	// small-ring witness search — livelock-freedom stays open, exit 3.
	stutter := filepath.Join(t.TempDir(), "stutter.gc")
	src := "protocol stutter\ndomain 2\nwindow -1 0\n" +
		"legit x[0] == x[-1]\naction spin: x[0] != x[-1] -> x[0] := x[0]\n"
	if err := os.WriteFile(stutter, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runCode(t, bin, "-file", stutter)
	if code != 3 {
		t.Fatalf("stutter exit = %d, want 3\n%s", code, out)
	}
	requireContains(t, out,
		"verdict: inconclusive in every lane that ran (exit 3)",
		"livelock-freedom inconclusive")
}
