// Package clitest runs the command-line tools end to end via `go run`,
// asserting on their observable output — the closest thing to a user
// driving the shipped binaries. Skipped under -short.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// run executes `go run ./cmd/<tool> args...` at the module root and returns
// combined output; wantExit selects the expected process outcome.
func run(t *testing.T, tool string, wantOK bool, args ...string) string {
	t.Helper()
	root := moduleRoot(t)
	cmdArgs := append([]string{"run", "./cmd/" + tool}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if wantOK && err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	if !wantOK && err == nil {
		t.Fatalf("%s %v expected a non-zero exit\n%s", tool, args, out)
	}
	return string(out)
}

func requireContains(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func TestLrverifyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrverify", true, "-protocol", "sum-not-two-ss", "-explain")
	requireContains(t, out,
		"Theorem 4.2 (deadlock-freedom for every K): true",
		"livelock-free",
		"strongly self-stabilizing for EVERY ring size K",
		"diagnosis:")

	out = run(t, "lrverify", true, "-protocol", "matchingB")
	requireContains(t, out,
		"Theorem 4.2 (deadlock-freedom for every K): false",
		"<rll, lls, lsr, srl>",
		"deadlocking ring sizes up to 16: 4 6 7 8")

	out = run(t, "lrverify", true, "-file", "specs/mis.gc")
	requireContains(t, out, "protocol mis", "Theorem 4.2 (deadlock-freedom for every K): true")

	run(t, "lrverify", false, "-protocol", "not-a-protocol")
}

func TestLrsynthEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrsynth", true, "-protocol", "agreement", "-validate", "4")
	requireContains(t, out, "accept", "phase NPL", "K=4:true")

	out = run(t, "lrsynth", false, "-protocol", "coloring3")
	requireContains(t, out, "declare failure", "FAILURE")
}

func TestLrmcEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrmc", true, "-protocol", "agreement-both", "-k", "4")
	requireContains(t, out, "livelock: FOUND", "strong convergence to I(K): false", "weak convergence to I(K): true")

	out = run(t, "lrmc", true, "-protocol", "token-ring", "-k", "4", "-m", "4")
	requireContains(t, out, "strong convergence to I(K): true", "recovery radius")
}

func TestLrvizEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrviz", true, "-protocol", "matching", "-graph", "rcg")
	requireContains(t, out, "digraph", "style=dashed", `"lls"`)
}

func TestLrsimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrsim", true, "-protocol", "sum-not-two-ss", "-k", "6", "-trials", "20")
	requireContains(t, out, "converged: 20/20")
}

func TestLrtreeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrtree", true, "-file", "specs/coloring3.gc", "-synthesize", "-validate-chains", "3")
	requireContains(t, out, "stabilizing over ALL rooted trees", "chain n=3: strongly converges=true")
}

func TestLrexperimentsSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrexperiments", true, "-id", "F5", "-summary")
	requireContains(t, out, "F5", "match=true")
}

// TestMalformedSpecIsOneLineError feeds the tools a spec that parses but
// whose action writes outside the domain: the binaries must exit non-zero
// with a single "tool: message" line, never a panic stack trace.
func TestMalformedSpecIsOneLineError(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bad := filepath.Join(t.TempDir(), "overflow.gc")
	src := "protocol overflow\ndomain 2\nwindow 0 1\n" +
		"legit x[0] == x[1]\naction bump: x[0] != x[1] -> x[0] := x[1] + 1\n"
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tool := range []string{"lrmc", "lrverify"} {
		out := run(t, tool, false, "-file", bad)
		requireContains(t, out, tool+": ", "outside domain")
		for _, forbidden := range []string{"panic", "goroutine"} {
			if strings.Contains(out, forbidden) {
				t.Fatalf("%s dumped a stack trace:\n%s", tool, out)
			}
		}
		// "exit status N" from `go run` aside, the tool's own output is
		// exactly one diagnostic line.
		var diag int
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if strings.HasPrefix(line, tool+": ") {
				diag++
			}
		}
		if diag != 1 {
			t.Fatalf("%s printed %d diagnostic lines, want 1:\n%s", tool, diag, out)
		}
	}
	// Unreadable files take the same path.
	out := run(t, "lrmc", false, "-file", filepath.Join(t.TempDir(), "missing.gc"))
	requireContains(t, out, "lrmc: ", "no such file")
}

func TestLrreportEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := run(t, "lrreport", true, "-maxk", "4", "-trials", "10")
	requireContains(t, out, "# paramring evaluation sweep", "| matchingA |", "Simulated recovery")
}
