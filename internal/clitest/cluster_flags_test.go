package clitest

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLrserved compiles the lrserved binary once per test into a temp
// dir (same rationale as buildLrverify: `go run` flattens exit codes).
func buildLrserved(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lrserved")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/lrserved")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build lrserved: %v\n%s", err, out)
	}
	return bin
}

// TestLrservedClusterFlagValidation pins the exit-2 contract for the
// cluster flag surface: every rejected topology must fail fast at the
// flag boundary — before any socket binds — with a message naming the
// offending flag.
func TestLrservedClusterFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildLrserved(t)

	cases := []struct {
		name string
		args []string
		want string // substring the stderr must carry
	}{
		{
			"lease TTL at heartbeat interval",
			[]string{"-coordinator", "-lease-ttl", "2s", "-heartbeat-interval", "2s"},
			"-lease-ttl",
		},
		{
			"lease TTL below heartbeat interval",
			[]string{"-coordinator", "-lease-ttl", "1s", "-heartbeat-interval", "5s"},
			"must exceed -heartbeat-interval",
		},
		{
			"zero lease TTL",
			[]string{"-coordinator", "-lease-ttl", "0s"},
			"-lease-ttl must be positive",
		},
		{
			"zero heartbeat interval",
			[]string{"-coordinator", "-heartbeat-interval", "0s"},
			"-heartbeat-interval must be positive",
		},
		{
			"malformed join address",
			[]string{"-join", "not a url"},
			"-join",
		},
		{
			"join without scheme",
			[]string{"-join", "coordinator:8420"},
			"http(s) base URL",
		},
		{
			"coordinator and join together",
			[]string{"-coordinator", "-join", "http://other:8420"},
			"mutually exclusive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			cmd.Dir = moduleRoot(t)
			out, err := cmd.CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("lrserved %v: expected exit error, got %v\n%s", tc.args, err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("lrserved %v exit = %d, want 2\n%s", tc.args, code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("lrserved %v output missing %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}
