package protogen

import (
	"math/rand"
	"testing"

	"paramring/internal/core"
)

func TestRandomDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := Random(rng, Options{})
		if p.Domain() < 2 || p.Domain() > 3 {
			t.Fatalf("domain = %d", p.Domain())
		}
		lo, hi := p.Window()
		if lo != -1 || hi != 0 {
			t.Fatalf("window [%d,%d]", lo, hi)
		}
		some := false
		for s := 0; s < p.NumLocalStates(); s++ {
			if p.Legitimate(core.LocalState(s)) {
				some = true
				break
			}
		}
		if !some {
			t.Fatal("legitimate set must be non-empty")
		}
	}
}

func TestRandomSelfDisabling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		p := Random(rng, Options{SelfDisabling: true, MovePercent: 70, Nondet: true})
		if !p.Compile().IsSelfDisabling() {
			t.Fatalf("iteration %d: generator produced self-enabling protocol", i)
		}
	}
}

func TestRandomWiderWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, win := range [][2]int{{-2, 0}, {-1, 1}, {0, 1}} {
		p := Random(rng, Options{Domain: 2, Lo: win[0], Hi: win[1], SelfDisabling: true, MovePercent: 60})
		lo, hi := p.Window()
		if lo != win[0] || hi != win[1] {
			t.Fatalf("window [%d,%d], want %v", lo, hi, win)
		}
		if !p.Compile().IsSelfDisabling() {
			t.Fatalf("window %v: not self-disabling", win)
		}
	}
}

func TestRandomHasTransitionsSometimes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	withMoves := 0
	for i := 0; i < 60; i++ {
		p := Random(rng, Options{MovePercent: 60})
		if len(p.Compile().Trans) > 0 {
			withMoves++
		}
	}
	if withMoves < 30 {
		t.Fatalf("only %d/60 protocols had transitions", withMoves)
	}
}
