package protogen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"paramring/internal/core"
	"paramring/internal/dsl"
)

func testSweep() *Sweep {
	return &Sweep{
		Seed: 42,
		Families: []SweepFamily{
			{Name: "alpha", Domain: 3, Lo: -1, Hi: 0, Variants: 5},
			{Name: "beta", Domain: 2, Lo: 0, Hi: 1, Variants: 4, Nondet: true},
		},
	}
}

func TestSweepDeterministicAndParsable(t *testing.T) {
	a, err := testSweep().Specs()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSweep().Specs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same manifest must generate byte-identical specs")
	}
	// 2 bases + 5 + 4 variants.
	if len(a) != 11 {
		t.Fatalf("generated %d specs, want 11", len(a))
	}
	for _, s := range a {
		spec, err := dsl.ParseSpec(s.Source)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if spec.Name != s.Name {
			t.Fatalf("spec name %q, manifest name %q", spec.Name, s.Name)
		}
	}
}

// Every member of a family must share its base's shape (domain, window,
// legitimacy): that is the invariant the corpus keys its skeleton/memo
// sharing on.
func TestSweepFamilyMembersShareShape(t *testing.T) {
	specs, err := testSweep().Specs()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]string{}
	for _, s := range specs {
		byName[s.Name] = s.Source
	}
	for _, s := range specs {
		if len(s.Deps) == 0 {
			continue
		}
		baseSpec, err := dsl.ParseSpec(byName[s.Deps[0]])
		if err != nil {
			t.Fatal(err)
		}
		varSpec, err := dsl.ParseSpec(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := baseSpec.Protocol()
		if err != nil {
			t.Fatal(err)
		}
		vp, err := varSpec.Protocol()
		if err != nil {
			t.Fatal(err)
		}
		blo, bhi := bp.Window()
		vlo, vhi := vp.Window()
		if bp.Domain() != vp.Domain() || blo != vlo || bhi != vhi {
			t.Fatalf("%s: shape differs from base %s", s.Name, s.Deps[0])
		}
		for ls := 0; ls < bp.NumLocalStates(); ls++ {
			if bp.Legitimate(core.LocalState(ls)) != vp.Legitimate(core.LocalState(ls)) {
				t.Fatalf("%s: legitimacy differs from base %s at state %d", s.Name, s.Deps[0], ls)
			}
		}
	}
}

// Sweep actions must be self-disabling (the paper's Assumption 2): every
// transition's destination has no outgoing transition.
func TestSweepVariantsSelfDisabling(t *testing.T) {
	specs, err := testSweep().Specs()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, s := range specs {
		spec, err := dsl.ParseSpec(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		p, err := spec.Protocol()
		if err != nil {
			t.Fatal(err)
		}
		sys := p.Compile()
		enabled := map[int]bool{}
		for _, tr := range sys.Trans {
			enabled[int(tr.Src)] = true
		}
		for _, tr := range sys.Trans {
			if enabled[int(tr.Dst)] {
				t.Fatalf("%s: transition into enabled state %d — not self-disabling", s.Name, tr.Dst)
			}
		}
		checked += len(sys.Trans)
	}
	if checked == 0 {
		t.Fatal("sweep generated no transitions at all; nothing exercised")
	}
}

func TestLoadSweepRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	data, err := json.Marshal(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sw, err := LoadSweep(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sw.Specs()
	if err != nil {
		t.Fatal(err)
	}
	want, err := testSweep().Specs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("manifest loaded from disk must generate the same specs")
	}
}

func TestSweepRejectsBadManifests(t *testing.T) {
	for name, sw := range map[string]*Sweep{
		"empty":       {},
		"no-name":     {Families: []SweepFamily{{Domain: 2, Variants: 1}}},
		"dup":         {Families: []SweepFamily{{Name: "a", Domain: 2, Variants: 1}, {Name: "a", Domain: 2, Variants: 1}}},
		"domain":      {Families: []SweepFamily{{Name: "a", Domain: 1, Variants: 1}}},
		"window":      {Families: []SweepFamily{{Name: "a", Domain: 2, Lo: 1, Hi: 2, Variants: 1}}},
		"no-variants": {Families: []SweepFamily{{Name: "a", Domain: 2}}},
	} {
		if _, err := sw.Specs(); err == nil {
			t.Errorf("%s: Specs() accepted a bad manifest", name)
		}
	}
}
