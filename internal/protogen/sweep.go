package protogen

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strings"

	"paramring/internal/core"
	"paramring/internal/dsl"
)

// Sweep is a deterministic protocol-generation manifest: a seed plus a list
// of families, each a fixed protocol shape (domain, window, one shared
// legitimacy predicate) spawning Variants randomly-tabled self-disabling
// members. Because every member of a family shares its shape, the fleet
// runner can verify a whole family through one skeleton LTG and one
// Theorem 5.14 verdict memo — the sweep is the corpus layer's stress input.
//
// The same (Seed, Families) always produces byte-identical spec sources, so
// a manifest checked into a repo pins its corpus exactly.
type Sweep struct {
	Seed     int64         `json:"seed"`
	Families []SweepFamily `json:"families"`
}

// SweepFamily shapes one family of generated specs.
type SweepFamily struct {
	// Name prefixes the generated spec names: "<name>-base" and
	// "<name>-vNNN". Must be unique within the sweep.
	Name string `json:"name"`
	// Domain is the variable domain size (>= 2).
	Domain int `json:"domain"`
	// Lo, Hi set the read window; Lo <= 0 <= Hi.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Variants is the number of randomly-tabled members beyond the base.
	Variants int `json:"variants"`
	// MovePercent is the per-state probability (0..100) of an outgoing
	// transition (default 40), as in Options.
	MovePercent int `json:"move_percent,omitempty"`
	// Nondet allows up to two candidate writes per enabled state.
	Nondet bool `json:"nondet,omitempty"`
}

// SweepSpec is one generated spec: a guarded-commands source plus the names
// of the sweep specs it depends on (variants depend on their family base,
// so editing the base dirties the whole family in the corpus graph).
type SweepSpec struct {
	Name   string
	Source string
	Deps   []string
}

// LoadSweep reads a sweep manifest from a JSON file.
func LoadSweep(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sw Sweep
	if err := json.Unmarshal(data, &sw); err != nil {
		return nil, fmt.Errorf("sweep manifest %s: %w", path, err)
	}
	return &sw, nil
}

// Specs generates the sweep deterministically: for each family, one base
// spec (the shared shape, no actions) followed by Variants self-disabling
// members whose transition tables are drawn per-variant. Every emitted
// source is round-tripped through the DSL parser before it is returned, so
// a Specs() success guarantees the corpus can ingest the result.
func (sw *Sweep) Specs() ([]SweepSpec, error) {
	if len(sw.Families) == 0 {
		return nil, fmt.Errorf("sweep: no families")
	}
	seen := map[string]bool{}
	var out []SweepSpec
	for _, f := range sw.Families {
		if f.Name == "" {
			return nil, fmt.Errorf("sweep: family with empty name")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("sweep: duplicate family %q", f.Name)
		}
		seen[f.Name] = true
		if f.Domain < 2 {
			return nil, fmt.Errorf("sweep family %q: domain %d < 2", f.Name, f.Domain)
		}
		if f.Lo > 0 || f.Hi < 0 {
			return nil, fmt.Errorf("sweep family %q: window [%d,%d] must contain 0", f.Name, f.Lo, f.Hi)
		}
		if f.Variants < 1 {
			return nil, fmt.Errorf("sweep family %q: variants %d < 1", f.Name, f.Variants)
		}
		movePercent := f.MovePercent
		if movePercent == 0 {
			movePercent = 40
		}

		// One rng per family, seeded from the sweep seed and the family
		// name: adding a family never reshuffles another's members.
		h := fnv.New64a()
		h.Write([]byte(f.Name))
		rng := rand.New(rand.NewSource(sw.Seed ^ int64(h.Sum64())))

		d := f.Domain
		w := f.Hi - f.Lo + 1
		n := 1
		for i := 0; i < w; i++ {
			n *= d
		}

		// The family's shared legitimacy bitset: non-empty, and non-full
		// when possible, so verification has illegitimate states to reason
		// about.
		legit := make([]bool, n)
		count := 0
		for i := range legit {
			if rng.Intn(2) == 0 {
				legit[i] = true
				count++
			}
		}
		if count == 0 {
			legit[rng.Intn(n)] = true
		} else if count == n && n > 1 {
			legit[rng.Intn(n)] = false
		}
		legitExpr := legitimacyExpr(legit, d, f.Lo, w)

		base := SweepSpec{
			Name: f.Name + "-base",
			Source: fmt.Sprintf("protocol %s\ndomain %d\nwindow %d %d\nlegit %s\n",
				f.Name+"-base", d, f.Lo, f.Hi, legitExpr),
		}
		out = append(out, base)

		own := -f.Lo
		contexts := n / d
		for v := 0; v < f.Variants; v++ {
			var b strings.Builder
			name := fmt.Sprintf("%s-v%03d", f.Name, v)
			fmt.Fprintf(&b, "protocol %s\ndomain %d\nwindow %d %d\nlegit %s\n",
				name, d, f.Lo, f.Hi, legitExpr)
			// Per-context terminal classification, as in Random: movers
			// write only terminal values, so every action self-disables.
			for ctx := 0; ctx < contexts; ctx++ {
				terminal := make([]bool, d)
				var terms []int
				for val := 0; val < d; val++ {
					if rng.Intn(2) == 0 {
						terminal[val] = true
						terms = append(terms, val)
					}
				}
				if len(terms) == 0 {
					continue
				}
				for ov := 0; ov < d; ov++ {
					if terminal[ov] || rng.Intn(100) >= movePercent {
						continue
					}
					st := stateFor(ctx, ov, own, w, d)
					targets := pick(rng, terms, f.Nondet)
					view := core.Decode(st, d, w)
					fmt.Fprintf(&b, "action m%d: %s -> x[0] := %d", int(st), stateGuard(view, f.Lo), targets[0])
					if len(targets) > 1 {
						fmt.Fprintf(&b, " | x[0] := %d", targets[1])
					}
					b.WriteByte('\n')
				}
			}
			out = append(out, SweepSpec{Name: name, Source: b.String(), Deps: []string{base.Name}})
		}
	}
	for _, s := range out {
		spec, err := dsl.ParseSpec(s.Source)
		if err != nil {
			return nil, fmt.Errorf("sweep: generated spec %s does not parse: %w", s.Name, err)
		}
		if _, err := spec.Protocol(); err != nil {
			return nil, fmt.Errorf("sweep: generated spec %s does not compile: %w", s.Name, err)
		}
	}
	return out, nil
}

// legitimacyExpr renders a legitimacy bitset as a disjunction of per-state
// window-equality conjunctions ("0 == 0" when every state is legitimate).
func legitimacyExpr(legit []bool, d, lo, w int) string {
	all := true
	var states []string
	for s := range legit {
		if !legit[s] {
			all = false
			continue
		}
		view := core.Decode(core.LocalState(s), d, w)
		states = append(states, "("+stateGuard(view, lo)+")")
	}
	if all {
		return "0 == 0"
	}
	return strings.Join(states, " || ")
}

// stateGuard renders the conjunction that pins the whole read window to one
// local state, e.g. "x[-1] == 1 && x[0] == 0".
func stateGuard(view core.View, lo int) string {
	var parts []string
	for i, val := range view {
		parts = append(parts, fmt.Sprintf("x[%d] == %d", lo+i, val))
	}
	return strings.Join(parts, " && ")
}
