// Package protogen generates random parameterized ring protocols for
// property-based testing. The generators are deterministic given a
// rand.Rand, and can guarantee structural properties the paper's theorems
// assume (self-disablement, non-trivial legitimate sets).
package protogen

import (
	"fmt"
	"math/rand"

	"paramring/internal/core"
)

// Options shapes the generated protocol.
type Options struct {
	// Domain is the variable domain size (default: random in 2..3).
	Domain int
	// Lo, Hi set the read window (default [-1, 0]). Lo <= 0 <= Hi required.
	Lo, Hi int
	// SelfDisabling forces every local transition to land in a local
	// deadlock (the paper's Assumption 2).
	SelfDisabling bool
	// MovePercent is the per-state probability (0..100) of having an
	// outgoing transition (default 40).
	MovePercent int
	// Nondet allows up to two candidate writes per enabled state.
	Nondet bool
}

func (o *Options) defaults(rng *rand.Rand) {
	if o.Domain == 0 {
		o.Domain = 2 + rng.Intn(2)
	}
	if o.Lo == 0 && o.Hi == 0 {
		o.Lo = -1
	}
	if o.MovePercent == 0 {
		o.MovePercent = 40
	}
}

// Random generates a protocol with a random transition table and a random
// (non-empty, non-full if possible) legitimacy predicate.
func Random(rng *rand.Rand, opts Options) *core.Protocol {
	opts.defaults(rng)
	d := opts.Domain
	w := opts.Hi - opts.Lo + 1
	n := 1
	for i := 0; i < w; i++ {
		n *= d
	}

	legit := make([]bool, n)
	anyLegit := false
	for i := range legit {
		legit[i] = rng.Intn(2) == 0
		anyLegit = anyLegit || legit[i]
	}
	if !anyLegit {
		legit[rng.Intn(n)] = true
	}

	own := -opts.Lo
	moves := map[core.LocalState][]int{}
	if opts.SelfDisabling {
		// Classify own-values into movers and terminals per "context" (the
		// non-own window positions): movers only write terminal values, so
		// every transition lands in a deadlock.
		contexts := n / d
		for ctx := 0; ctx < contexts; ctx++ {
			terminal := make([]bool, d)
			var terms []int
			for v := 0; v < d; v++ {
				if rng.Intn(2) == 0 {
					terminal[v] = true
					terms = append(terms, v)
				}
			}
			if len(terms) == 0 {
				continue
			}
			for ov := 0; ov < d; ov++ {
				if terminal[ov] || rng.Intn(100) >= opts.MovePercent {
					continue
				}
				st := stateFor(ctx, ov, own, w, d)
				moves[st] = pick(rng, terms, opts.Nondet)
			}
		}
	} else {
		for s := 0; s < n; s++ {
			if rng.Intn(100) >= opts.MovePercent {
				continue
			}
			all := make([]int, d)
			for v := range all {
				all[v] = v
			}
			moves[core.LocalState(s)] = pick(rng, all, opts.Nondet)
		}
	}

	dd := d
	bits := legit
	p, err := core.NewFromTable(core.Config{
		Name:   fmt.Sprintf("rnd-d%d-w%d", d, w),
		Domain: d,
		Lo:     opts.Lo,
		Hi:     opts.Hi,
		Legit: func(v core.View) bool {
			return bits[int(core.Encode(v, dd))]
		},
	}, []core.TableAction{{Name: "m", Moves: moves}})
	if err != nil {
		panic(fmt.Sprintf("protogen: %v", err))
	}
	return p
}

// stateFor builds the local state code with the given context (the mixed
// radix over non-own positions) and own value.
func stateFor(ctx, own, ownIdx, w, d int) core.LocalState {
	view := make(core.View, w)
	for i := 0; i < w; i++ {
		if i == ownIdx {
			view[i] = own
			continue
		}
		view[i] = ctx % d
		ctx /= d
	}
	return core.Encode(view, d)
}

func pick(rng *rand.Rand, from []int, nondet bool) []int {
	first := from[rng.Intn(len(from))]
	out := []int{first}
	if nondet && len(from) > 1 && rng.Intn(3) == 0 {
		second := from[rng.Intn(len(from))]
		if second != first {
			out = append(out, second)
		}
	}
	return out
}
