package rcg

import (
	"math/big"
	"math/rand"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
	"paramring/internal/protogen"
)

func countExplicit(t *testing.T, p *core.Protocol, k int, pred func(in *explicit.Instance, id uint64) bool) int64 {
	t.Helper()
	in, err := explicit.NewInstance(p, k)
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	for id := uint64(0); id < in.NumStates(); id++ {
		if pred(in, id) {
			count++
		}
	}
	return count
}

func TestCountLegitimateAgreement(t *testing.T) {
	// Agreement's I(K) is always {all zeros, all ones}.
	r := Build(protocols.AgreementBase().Compile())
	for k := 1; k <= 20; k++ {
		got, err := r.CountLegitimate(k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(2)) != 0 {
			t.Fatalf("K=%d: |I| = %s, want 2", k, got)
		}
	}
}

// "No two adjacent ones" counts legitimate states by the Lucas numbers.
func TestCountLegitimateLucasNumbers(t *testing.T) {
	p := core.MustNew(core.Config{
		Name: "no-adjacent-ones", Domain: 2, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return !(v[0] == 1 && v[1] == 1) },
	})
	r := Build(p.Compile())
	// Lucas numbers L(2)=3, L(3)=4, L(4)=7, L(5)=11, ...
	lucas := []int64{3, 4, 7, 11, 18, 29, 47, 76, 123, 199}
	for i, want := range lucas {
		k := i + 2
		got, err := r.CountLegitimate(k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("K=%d: |I| = %s, want %d", k, got, want)
		}
	}
	// And a big K far beyond explicit reach, checked against the Lucas
	// recurrence L(n) = L(n-1) + L(n-2) computed independently.
	a, b := big.NewInt(3), big.NewInt(4) // L(2), L(3)
	for n := 4; n <= 90; n++ {
		a, b = b, new(big.Int).Add(a, b)
	}
	got, err := r.CountLegitimate(90)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(b) != 0 {
		t.Fatalf("L(90) = %s, recurrence gives %s", got, b)
	}
}

func TestCountMatchesExplicitOnZoo(t *testing.T) {
	for _, name := range []string{"matchingA", "matchingB", "sum-not-two-ss", "mis", "coloring3"} {
		p := protocols.All()[name]
		r := Build(p.Compile())
		for k := 2; k <= 6; k++ {
			wantI := countExplicit(t, p, k, func(in *explicit.Instance, id uint64) bool {
				return in.InI(id)
			})
			gotI, err := r.CountLegitimate(k)
			if err != nil {
				t.Fatal(err)
			}
			if gotI.Cmp(big.NewInt(wantI)) != 0 {
				t.Fatalf("%s K=%d: |I| = %s, explicit %d", name, k, gotI, wantI)
			}
			wantD := countExplicit(t, p, k, func(in *explicit.Instance, id uint64) bool {
				return !in.InI(id) && in.IsDeadlock(id)
			})
			gotD, err := r.CountIllegitimateDeadlocks(k)
			if err != nil {
				t.Fatal(err)
			}
			if gotD.Cmp(big.NewInt(wantD)) != 0 {
				t.Fatalf("%s K=%d: bad deadlocks = %s, explicit %d", name, k, gotD, wantD)
			}
		}
	}
}

// The Figure 3 narrative in numbers: matching B's illegitimate deadlock
// counts per ring size (4 at K=4, none at K=5, 6 at K=6, 7 at K=7 — the
// composite-walk refinement made countable).
func TestCountMatchingBDeadlockCounts(t *testing.T) {
	r := Build(protocols.MatchingB().Compile())
	want := map[int]int64{4: 4, 5: 0, 6: 6, 7: 7}
	for k, w := range want {
		got, err := r.CountIllegitimateDeadlocks(k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("K=%d: %s illegitimate deadlocks, want %d", k, got, w)
		}
	}
}

func TestCountGlobalStatesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	for trial := 0; trial < 40; trial++ {
		p := protogen.Random(rng, protogen.Options{MovePercent: 40})
		r := Build(p.Compile())
		for k := 2; k <= 5; k++ {
			want := countExplicit(t, p, k, func(in *explicit.Instance, id uint64) bool {
				return in.InI(id)
			})
			got, err := r.CountLegitimate(k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(big.NewInt(want)) != 0 {
				t.Fatalf("trial %d K=%d: %s vs explicit %d", trial, k, got, want)
			}
		}
	}
}

func TestCountValidation(t *testing.T) {
	r := Build(protocols.AgreementBase().Compile())
	if _, err := r.CountLegitimate(0); err == nil {
		t.Fatal("K=0 must error")
	}
	zero, err := r.CountGlobalStates(5, func(core.LocalState) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if zero.Sign() != 0 {
		t.Fatalf("empty predicate count = %s", zero)
	}
	// Total state count: pred true everywhere gives domain^K.
	all, err := r.CountGlobalStates(10, func(core.LocalState) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if all.Cmp(big.NewInt(1024)) != 0 {
		t.Fatalf("total = %s, want 2^10", all)
	}
}
