// Package rcg implements the Right Continuation Graph of Section 4 of the
// paper and Theorem 4.2, the necessary-and-sufficient local condition for
// global deadlock-freedom of parameterized rings:
//
//	p(K) is deadlock-free outside I(K) for every K
//	    iff
//	the RCG induced over the local deadlocks of P_r has no directed cycle
//	containing an illegitimate local state.
//
// The package also constructs explicit witnesses: an illegitimate deadlock
// cycle of length n unrolls into a concrete global deadlock on any ring
// whose size is a multiple of n.
package rcg

import (
	"fmt"
	"sort"
	"strings"

	"paramring/internal/core"
	"paramring/internal/graph"
)

// RCG is the Right Continuation Graph of a protocol: a digraph over the
// local state codes of the representative process where an s-arc (s1, s2)
// means s2 is a possible local state of the right successor of a process in
// local state s1 (Definition 4.1).
type RCG struct {
	sys *core.System
	g   *graph.Digraph
}

// Build constructs the RCG of a compiled protocol. For a read window
// [lo, hi] of width w, s2 continues s1 iff the shared variables agree:
// decode(s1)[1:] == decode(s2)[:w-1]. For w == 1 there are no shared
// variables and every ordered pair is a continuation.
func Build(sys *core.System) *RCG {
	p := sys.Protocol()
	d := p.Domain()
	w := p.W()
	n := sys.N()
	g := graph.New(n)

	if w == 1 {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				g.AddEdge(u, v)
			}
		}
		return &RCG{sys: sys, g: g}
	}

	// Key of s1: decode(s1)[1:], i.e. s1 / d. Key of s2: decode(s2)[:w-1],
	// i.e. s2 mod d^{w-1}. Arc iff keys equal.
	prefixMod := 1
	for i := 0; i < w-1; i++ {
		prefixMod *= d
	}
	byPrefix := make([][]int, prefixMod)
	for s := 0; s < n; s++ {
		k := s % prefixMod
		byPrefix[k] = append(byPrefix[k], s)
	}
	for s := 0; s < n; s++ {
		suffix := s / d
		for _, t := range byPrefix[suffix] {
			g.AddEdge(s, t)
		}
	}
	return &RCG{sys: sys, g: g}
}

// Continues reports whether s2 is a right continuation of s1 directly from
// the definition (used to cross-check the optimized construction).
func Continues(p *core.Protocol, s1, s2 core.LocalState) bool {
	w := p.W()
	if w == 1 {
		return true
	}
	v1 := p.Decode(s1)
	v2 := p.Decode(s2)
	for i := 1; i < w; i++ {
		if v1[i] != v2[i-1] {
			return false
		}
	}
	return true
}

// System returns the compiled protocol the RCG was built from.
func (r *RCG) System() *core.System { return r.sys }

// Graph returns the underlying s-arc digraph over all local states.
func (r *RCG) Graph() *graph.Digraph { return r.g }

// DeadlockGraph returns the subgraph induced over local deadlock states
// (vertex ids remain local-state codes; non-deadlock vertices are isolated).
func (r *RCG) DeadlockGraph() *graph.Digraph {
	return r.g.InducedSubgraph(func(v int) bool { return r.sys.IsDeadlock[v] })
}

// DeadlockReport is the outcome of the Theorem 4.2 check.
type DeadlockReport struct {
	// Free is the verdict: true means p(K) has no global deadlock outside
	// I(K) for any K.
	Free bool
	// BadCycles lists the elementary cycles of the deadlock-induced RCG that
	// pass through an illegitimate local state. Each cycle of length n is a
	// recipe for a global deadlock on rings of size n (and multiples).
	// Populated only when Free is false.
	BadCycles [][]core.LocalState
	// LocalDeadlocks and IllegitimateDeadlocks echo the protocol's local
	// deadlock analysis for reporting.
	LocalDeadlocks        []core.LocalState
	IllegitimateDeadlocks []core.LocalState
}

// CheckDeadlockFreedom applies Theorem 4.2. cycleLimit <= 0 selects the
// default. The verdict itself never fails (it needs only SCCs); enumeration
// of witness cycles can hit the limit, in which case the cycles found so far
// are returned along with the error — the Free verdict remains valid.
func (r *RCG) CheckDeadlockFreedom(cycleLimit int) (DeadlockReport, error) {
	rep := DeadlockReport{
		LocalDeadlocks:        r.sys.Deadlocks,
		IllegitimateDeadlocks: r.sys.IllegitimateDeadlocks(),
	}
	dg := r.DeadlockGraph()
	illegit := func(v int) bool { return !r.sys.Legit[v] }
	rep.Free = !dg.HasCycleThroughAny(illegit)
	if rep.Free {
		return rep, nil
	}
	cycles, err := dg.CyclesThroughAny(illegit, cycleLimit)
	rep.BadCycles = make([][]core.LocalState, len(cycles))
	for i, c := range cycles {
		states := make([]core.LocalState, len(c))
		for j, v := range c {
			states[j] = core.LocalState(v)
		}
		rep.BadCycles[i] = states
	}
	if err != nil {
		return rep, fmt.Errorf("rcg: witness enumeration incomplete: %w", err)
	}
	return rep, nil
}

// CheckDeadlockFreedomWithout applies Theorem 4.2 to the protocol obtained by
// resolving the given local deadlock states — i.e. granting each of them a
// recovery action so it is no longer a deadlock. Because the continuation
// relation depends only on the read-window shape (never on transitions), the
// revised protocol's RCG is this one, and its deadlock set is exactly
// r's deadlocks minus resolved. The returned report is therefore identical to
// compiling the revised protocol and running CheckDeadlockFreedom on it, at
// none of the cost — which lets a synthesis search decide Theorem 4.2 once
// per Resolve set instead of once per candidate assignment.
func (r *RCG) CheckDeadlockFreedomWithout(resolved []core.LocalState, cycleLimit int) (DeadlockReport, error) {
	drop := make(map[core.LocalState]bool, len(resolved))
	for _, s := range resolved {
		drop[s] = true
	}
	rep := DeadlockReport{}
	for _, s := range r.sys.Deadlocks {
		if !drop[s] {
			rep.LocalDeadlocks = append(rep.LocalDeadlocks, s)
		}
	}
	for _, s := range r.sys.IllegitimateDeadlocks() {
		if !drop[s] {
			rep.IllegitimateDeadlocks = append(rep.IllegitimateDeadlocks, s)
		}
	}
	dg := r.g.InducedSubgraph(func(v int) bool {
		return r.sys.IsDeadlock[v] && !drop[core.LocalState(v)]
	})
	illegit := func(v int) bool { return !r.sys.Legit[v] }
	rep.Free = !dg.HasCycleThroughAny(illegit)
	if rep.Free {
		return rep, nil
	}
	cycles, err := dg.CyclesThroughAny(illegit, cycleLimit)
	rep.BadCycles = make([][]core.LocalState, len(cycles))
	for i, c := range cycles {
		states := make([]core.LocalState, len(c))
		for j, v := range c {
			states[j] = core.LocalState(v)
		}
		rep.BadCycles[i] = states
	}
	if err != nil {
		return rep, fmt.Errorf("rcg: witness enumeration incomplete: %w", err)
	}
	return rep, nil
}

// UnrollCycle converts an RCG cycle over local deadlocks into a concrete
// global state for a ring of size k*len(cycle): process i takes the own
// value of cycle[i mod n]. By construction of the continuation relation, the
// local view of every process in the resulting ring is exactly its cycle
// state, so if all cycle states are local deadlocks the global state is a
// global deadlock (the Theorem 4.2 forward construction).
func (r *RCG) UnrollCycle(cycle []core.LocalState, k int) ([]int, error) {
	n := len(cycle)
	if n == 0 || k < 1 {
		return nil, fmt.Errorf("rcg: need non-empty cycle and k >= 1")
	}
	for i, s := range cycle {
		next := cycle[(i+1)%n]
		if !r.g.HasEdge(int(s), int(next)) {
			return nil, fmt.Errorf("rcg: %s -> %s is not an s-arc",
				r.sys.Protocol().FormatState(s), r.sys.Protocol().FormatState(next))
		}
	}
	vals := make([]int, 0, n*k)
	for rep := 0; rep < k; rep++ {
		for _, s := range cycle {
			vals = append(vals, r.sys.OwnValue(s))
		}
	}
	return vals, nil
}

// DeadlockRingSizes reports, for each K in [minK, maxK], whether the RCG
// predicts a global deadlock outside I on a ring of size exactly K: i.e.
// whether the deadlock-induced RCG has a closed walk of length K through an
// illegitimate vertex. (Example 4.3's protocol deadlocks exactly on ring
// sizes with such walks — multiples of 4 or 6.)
func (r *RCG) DeadlockRingSizes(minK, maxK int) map[int]bool {
	out := make(map[int]bool)
	if minK < 1 {
		minK = 1
	}
	dg := r.DeadlockGraph()
	n := dg.N()
	// reach[v] at step t = set of vertices reachable from the start vertex
	// in exactly t steps. Run once per illegitimate deadlock start.
	for _, start := range r.sys.IllegitimateDeadlocks() {
		cur := make([]bool, n)
		cur[int(start)] = true
		for t := 1; t <= maxK; t++ {
			next := make([]bool, n)
			for u := 0; u < n; u++ {
				if !cur[u] {
					continue
				}
				for _, v := range dg.Succ(u) {
					next[v] = true
				}
			}
			cur = next
			if t >= minK && cur[int(start)] {
				out[t] = true
			}
		}
	}
	for k := minK; k <= maxK; k++ {
		if !out[k] {
			out[k] = false
		}
	}
	return out
}

// FormatCycle renders a cycle with named local states, e.g.
// "<lls, lsr, srl, rll>".
func (r *RCG) FormatCycle(cycle []core.LocalState) string {
	parts := make([]string, len(cycle))
	for i, s := range cycle {
		parts[i] = r.sys.Protocol().FormatState(s)
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// SortedBadCycleLengths returns the distinct lengths of the report's bad
// cycles in increasing order — the fundamental deadlocking ring sizes.
func (rep DeadlockReport) SortedBadCycleLengths() []int {
	seen := map[int]bool{}
	for _, c := range rep.BadCycles {
		seen[len(c)] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
