package rcg

import (
	"math/rand"
	"reflect"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
	"paramring/internal/protogen"
)

func TestContinuationDefinitionMatchesConstruction(t *testing.T) {
	for _, p := range []*core.Protocol{
		protocols.MatchingStateSpace(), // window [-1,1]
		protocols.AgreementBase(),      // window [-1,0]
		protocols.Coloring(3),
		protocols.SumNotTwoBase(),
	} {
		r := Build(p.Compile())
		n := p.NumLocalStates()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := Continues(p, core.LocalState(u), core.LocalState(v))
				if got := r.Graph().HasEdge(u, v); got != want {
					t.Fatalf("%s: arc (%s,%s): got %v want %v", p.Name(),
						p.FormatState(core.LocalState(u)), p.FormatState(core.LocalState(v)), got, want)
				}
			}
		}
	}
}

func TestContinuationWidthOne(t *testing.T) {
	p := core.MustNew(core.Config{
		Name: "w1", Domain: 2, Lo: 0, Hi: 0,
		Legit: func(v core.View) bool { return true },
	})
	r := Build(p.Compile())
	// No shared variables: complete digraph including self-loops.
	if r.Graph().M() != 4 {
		t.Fatalf("w=1 RCG edges = %d, want 4", r.Graph().M())
	}
}

// Figure 1: the RCG over all 27 local states of maximal matching. Each local
// state (a,b,c) has exactly d=3 right continuations (b,c,*), so the RCG has
// 27*3 = 81 s-arcs.
func TestFigure1MatchingRCGShape(t *testing.T) {
	p := protocols.MatchingStateSpace()
	r := Build(p.Compile())
	if r.Graph().N() != 27 {
		t.Fatalf("vertices = %d, want 27", r.Graph().N())
	}
	if r.Graph().M() != 81 {
		t.Fatalf("s-arcs = %d, want 81", r.Graph().M())
	}
	for u := 0; u < 27; u++ {
		if d := r.Graph().OutDegree(u); d != 3 {
			t.Fatalf("out-degree of %s = %d, want 3", p.FormatState(core.LocalState(u)), d)
		}
	}
	// Spot-check from the paper: lls -> lsr is a continuation, lls -> rsl is not.
	lls := p.Encode(core.View{protocols.MatchLeft, protocols.MatchLeft, protocols.MatchSelf})
	lsr := p.Encode(core.View{protocols.MatchLeft, protocols.MatchSelf, protocols.MatchRight})
	rsl := p.Encode(core.View{protocols.MatchRight, protocols.MatchSelf, protocols.MatchLeft})
	if !r.Graph().HasEdge(int(lls), int(lsr)) {
		t.Fatal("lls -> lsr must be an s-arc")
	}
	if r.Graph().HasEdge(int(lls), int(rsl)) {
		t.Fatal("lls -> rsl must not be an s-arc")
	}
}

// Example 4.2 / Figure 2: the generalizable matching protocol is
// deadlock-free for every K by Theorem 4.2.
func TestExample42DeadlockFree(t *testing.T) {
	r := Build(protocols.MatchingA().Compile())
	rep, err := r.CheckDeadlockFreedom(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free {
		t.Fatalf("Example 4.2 must be deadlock-free; bad cycles: %v", rep.BadCycles)
	}
	if len(rep.BadCycles) != 0 {
		t.Fatal("free verdict must carry no bad cycles")
	}
	if len(rep.LocalDeadlocks) == 0 {
		t.Fatal("matching A has local deadlocks (its legitimate configurations)")
	}
}

// Example 4.3 / Figure 3: the non-generalizable protocol has exactly two
// elementary illegitimate deadlock cycles — length 4 <rll,lls,lsr,srl> and
// length 6 <rll,lls,lsr,srl,rlr,lrl> — both through <left,left,self>.
func TestExample43Cycles(t *testing.T) {
	p := protocols.MatchingB()
	r := Build(p.Compile())
	rep, err := r.CheckDeadlockFreedom(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Free {
		t.Fatal("Example 4.3 must NOT be deadlock-free for all K")
	}
	if got := rep.SortedBadCycleLengths(); !reflect.DeepEqual(got, []int{4, 6}) {
		t.Fatalf("bad cycle lengths = %v, want [4 6]", got)
	}
	lls := p.Encode(core.View{protocols.MatchLeft, protocols.MatchLeft, protocols.MatchSelf})
	for _, c := range rep.BadCycles {
		found := false
		for _, s := range c {
			if s == lls {
				found = true
			}
		}
		if !found {
			t.Fatalf("cycle %s does not pass through lls", r.FormatCycle(c))
		}
	}
}

// Resolving the single local deadlock <left,left,self> repairs Example 4.3:
// with lls no longer a deadlock, the RCG verdict flips to free (the paper's
// repair remark under Figure 3).
func TestExample43ResolvingLLSRepairs(t *testing.T) {
	p := protocols.MatchingB()
	lls := p.Encode(core.View{protocols.MatchLeft, protocols.MatchLeft, protocols.MatchSelf})
	repaired := p.WithActions("matchingB+fix", core.Action{
		Name: "FixLLS",
		Guard: func(v core.View) bool {
			return v[0] == protocols.MatchLeft && v[1] == protocols.MatchLeft && v[2] == protocols.MatchSelf
		},
		Next: func(v core.View) []int { return []int{protocols.MatchSelf} },
	})
	sys := repaired.Compile()
	if sys.IsDeadlock[lls] {
		t.Fatal("lls should no longer be a local deadlock")
	}
	rep, err := Build(sys).CheckDeadlockFreedom(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free {
		t.Fatalf("repaired Example 4.3 must be deadlock-free; cycles: %v", rep.BadCycles)
	}
}

// Unrolling the Figure 3 cycles produces concrete global deadlocks, verified
// by the explicit model checker (the forward direction of Theorem 4.2).
func TestUnrollCycleProducesGlobalDeadlocks(t *testing.T) {
	p := protocols.MatchingB()
	r := Build(p.Compile())
	rep, err := r.CheckDeadlockFreedom(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cycle := range rep.BadCycles {
		for k := 1; k <= 2; k++ {
			vals, err := r.UnrollCycle(cycle, k)
			if err != nil {
				t.Fatal(err)
			}
			in, err := explicit.NewInstance(p, len(vals))
			if err != nil {
				t.Fatal(err)
			}
			id := in.Encode(vals)
			if !in.IsDeadlock(id) {
				t.Fatalf("unrolled cycle %s (k=%d) state %s is not a global deadlock",
					r.FormatCycle(cycle), k, in.Format(id))
			}
			if in.InI(id) {
				t.Fatalf("unrolled state %s should be outside I", in.Format(id))
			}
		}
	}
}

func TestUnrollCycleRejectsNonArcs(t *testing.T) {
	p := protocols.AgreementBase()
	r := Build(p.Compile())
	// 00 -> 11 is not an s-arc (suffix 0 != prefix 1).
	if _, err := r.UnrollCycle([]core.LocalState{0, 3}, 1); err == nil {
		t.Fatal("expected error for non-continuation cycle")
	}
	if _, err := r.UnrollCycle(nil, 1); err == nil {
		t.Fatal("expected error for empty cycle")
	}
}

// DeadlockRingSizes must agree exactly with explicit-state search: this is
// the iff of Theorem 4.2 instantiated per ring size. Notably K=7 deadlocks
// via a composite closed walk that the paper's multiples-of-4-or-6 narrative
// does not list — the explicit checker confirms the walk semantics is right.
func TestDeadlockRingSizesMatchesExplicit(t *testing.T) {
	p := protocols.MatchingB()
	r := Build(p.Compile())
	predicted := r.DeadlockRingSizes(2, 9)
	for k := 2; k <= 9; k++ {
		in, err := explicit.NewInstance(p, k)
		if err != nil {
			t.Fatal(err)
		}
		actual := len(in.IllegitimateDeadlocks()) > 0
		if predicted[k] != actual {
			t.Fatalf("K=%d: RCG predicts deadlock=%v, explicit says %v", k, predicted[k], actual)
		}
	}
	// Anchors from the paper (4 and 6) and our refinement (5 free, 7 not).
	for k, want := range map[int]bool{4: true, 5: false, 6: true, 7: true} {
		if predicted[k] != want {
			t.Fatalf("K=%d: predicted %v, want %v", k, predicted[k], want)
		}
	}
}

func TestMatchingADeadlockRingSizesAllFree(t *testing.T) {
	r := Build(protocols.MatchingA().Compile())
	for k, has := range r.DeadlockRingSizes(2, 12) {
		if has {
			t.Fatalf("matchingA predicted deadlock at K=%d", k)
		}
	}
}

// Property test for the iff of Theorem 4.2: on random protocols the RCG
// verdict must agree with explicit deadlock search. The theorem guarantees
// that if a bad cycle exists, its length n yields a deadlock at K=n (n is at
// most the number of local deadlock states), and conversely any global
// deadlock at any K induces a bad cycle. So checking K up to the local state
// count is a complete cross-validation.
func TestTheorem42AgainstExplicitRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	for trial := 0; trial < 120; trial++ {
		p := protogen.Random(rng, protogen.Options{MovePercent: 40})
		sys := p.Compile()
		r := Build(sys)
		rep, err := r.CheckDeadlockFreedom(0)
		if err != nil {
			t.Fatal(err)
		}
		maxK := sys.N()
		if maxK < 2 {
			maxK = 2
		}
		explicitDeadlock := false
		for k := 2; k <= maxK; k++ {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(in.IllegitimateDeadlocks()) > 0 {
				explicitDeadlock = true
				break
			}
		}
		if rep.Free == explicitDeadlock {
			t.Fatalf("trial %d: Theorem 4.2 disagreement: RCG free=%v but explicit deadlock found=%v (protocol domain %d)",
				trial, rep.Free, explicitDeadlock, p.Domain())
		}
	}
}

func TestFormatCycle(t *testing.T) {
	p := protocols.AgreementBase()
	r := Build(p.Compile())
	got := r.FormatCycle([]core.LocalState{0, 3})
	if got != "<00, 11>" {
		t.Fatalf("FormatCycle = %q", got)
	}
}

func TestDeadlockGraphOnlyDeadlockVertices(t *testing.T) {
	sys := protocols.MatchingA().Compile()
	r := Build(sys)
	dg := r.DeadlockGraph()
	for _, e := range dg.Edges() {
		if !sys.IsDeadlock[e[0]] || !sys.IsDeadlock[e[1]] {
			t.Fatalf("edge %v touches a non-deadlock vertex", e)
		}
	}
}
