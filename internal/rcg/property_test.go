package rcg

import (
	"math/rand"
	"testing"

	"paramring/internal/explicit"
	"paramring/internal/protogen"
)

// Theorem 4.2's iff, cross-validated over a spread of window shapes:
// unidirectional depth-2 ([-2,0]), bidirectional ([-1,1]) and
// forward-looking ([0,1]). The continuation construction must be correct
// for all of them. Explicit checking up to K = |local states| covers every
// elementary cycle length.
func TestTheorem42WiderWindowsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	windows := [][2]int{{-2, 0}, {-1, 1}, {0, 1}}
	for trial := 0; trial < 90; trial++ {
		win := windows[trial%len(windows)]
		p := protogen.Random(rng, protogen.Options{
			Domain:      2, // keeps |S_local| <= 8, so K <= 8 suffices
			Lo:          win[0],
			Hi:          win[1],
			MovePercent: 45,
		})
		sys := p.Compile()
		r := Build(sys)
		rep, err := r.CheckDeadlockFreedom(0)
		if err != nil {
			t.Fatal(err)
		}
		explicitDeadlock := false
		for k := 2; k <= sys.N(); k++ {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(in.IllegitimateDeadlocks()) > 0 {
				explicitDeadlock = true
				break
			}
		}
		if rep.Free == explicitDeadlock {
			t.Fatalf("trial %d window %v: RCG free=%v but explicit deadlock=%v",
				trial, win, rep.Free, explicitDeadlock)
		}
	}
}

// Every bad cycle unrolls into a real global deadlock outside I — the
// constructive direction of Theorem 4.2, across random protocols.
func TestUnrollCycleAlwaysYieldsDeadlocksRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	checkedCycles := 0
	for trial := 0; trial < 80; trial++ {
		p := protogen.Random(rng, protogen.Options{MovePercent: 35})
		r := Build(p.Compile())
		rep, err := r.CheckDeadlockFreedom(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, cycle := range rep.BadCycles {
			k := 1
			if len(cycle) == 1 {
				k = 2 // explicit instances need K >= 2
			}
			vals, err := r.UnrollCycle(cycle, k)
			if err != nil {
				t.Fatal(err)
			}
			in, err := explicit.NewInstance(p, len(vals))
			if err != nil {
				t.Fatal(err)
			}
			id := in.Encode(vals)
			if !in.IsDeadlock(id) {
				t.Fatalf("trial %d: unrolled %s is not a deadlock", trial, in.Format(id))
			}
			if in.InI(id) {
				t.Fatalf("trial %d: unrolled %s is inside I", trial, in.Format(id))
			}
			checkedCycles++
			if checkedCycles > 200 {
				return
			}
		}
	}
	if checkedCycles < 20 {
		t.Fatalf("property too weak: only %d cycles checked", checkedCycles)
	}
}

// DeadlockRingSizes agrees with explicit search on random protocols — the
// per-K refinement of Theorem 4.2.
func TestDeadlockRingSizesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 50; trial++ {
		p := protogen.Random(rng, protogen.Options{Domain: 2, MovePercent: 40})
		r := Build(p.Compile())
		predicted := r.DeadlockRingSizes(2, 6)
		for k := 2; k <= 6; k++ {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			actual := len(in.IllegitimateDeadlocks()) > 0
			if predicted[k] != actual {
				t.Fatalf("trial %d K=%d: predicted %v explicit %v", trial, k, predicted[k], actual)
			}
		}
	}
}
