package rcg

import (
	"fmt"
	"testing"

	"paramring/internal/protocols"
)

func BenchmarkBuild(b *testing.B) {
	for _, name := range []string{"agreement", "matching"} {
		sys := protocols.All()[name].Compile()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Build(sys)
			}
		})
	}
}

func BenchmarkCheckDeadlockFreedom(b *testing.B) {
	for _, name := range []string{"matchingA", "matchingB", "mis"} {
		r := Build(protocols.All()[name].Compile())
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.CheckDeadlockFreedom(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeadlockRingSizes(b *testing.B) {
	r := Build(protocols.MatchingB().Compile())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.DeadlockRingSizes(2, 32)
	}
}

func BenchmarkUnrollCycle(b *testing.B) {
	r := Build(protocols.MatchingB().Compile())
	rep, err := r.CheckDeadlockFreedom(0)
	if err != nil {
		b.Fatal(err)
	}
	cycle := rep.BadCycles[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.UnrollCycle(cycle, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountLegitimate(b *testing.B) {
	r := Build(protocols.MatchingA().Compile())
	for _, k := range []int{8, 64, 1024} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.CountLegitimate(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
