package rcg_test

import (
	"fmt"

	"paramring/internal/protocols"
	"paramring/internal/rcg"
)

// Apply Theorem 4.2 to the paper's Example 4.3: the RCG over local deadlocks
// has two illegitimate cycles, so the protocol deadlocks on rings whose size
// matches a closed walk (4, 6, 7, 8, ...); unrolling the 4-cycle constructs
// a concrete global deadlock.
func ExampleRCG_CheckDeadlockFreedom() {
	r := rcg.Build(protocols.MatchingB().Compile())
	rep, err := r.CheckDeadlockFreedom(0)
	if err != nil {
		panic(err)
	}
	fmt.Println("deadlock-free for all K:", rep.Free)
	fmt.Println("cycle lengths:", rep.SortedBadCycleLengths())
	vals, err := r.UnrollCycle(rep.BadCycles[0], 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("witness ring:", protocols.MatchingB().FormatGlobal(vals))
	// Output:
	// deadlock-free for all K: false
	// cycle lengths: [4 6]
	// witness ring: llsr
}

// Count legitimate states for ring sizes far beyond explicit reach: global
// states are closed walks in the RCG, so |I(K)| = trace(A^K).
func ExampleRCG_CountLegitimate() {
	r := rcg.Build(protocols.AgreementBase().Compile())
	for _, k := range []int{3, 10, 50} {
		n, err := r.CountLegitimate(k)
		if err != nil {
			panic(err)
		}
		fmt.Printf("|I(%d)| = %s\n", k, n)
	}
	// Output:
	// |I(3)| = 2
	// |I(10)| = 2
	// |I(50)| = 2
}
