package rcg

import (
	"fmt"
	"math/big"

	"paramring/internal/core"
)

// maxCountVertices bounds the transfer-matrix dimension (matrix power is
// cubic per squaring).
const maxCountVertices = 512

// CountGlobalStates counts, exactly, the global states of a ring of size K
// in which EVERY process's local view satisfies pred — without enumerating
// the global state space. A global state of size K corresponds bijectively
// to a closed walk of length K through the RCG (each process's view is a
// vertex, consecutive views overlap, and the ring closes the walk), so the
// count is trace(A^K) of the pred-induced continuation adjacency matrix.
// This works for any K, including K below the window width (the wrap-around
// consistency constraints are exactly the walk-closure constraints).
//
// Counts grow exponentially in K, hence the big.Int result.
func (r *RCG) CountGlobalStates(k int, pred func(core.LocalState) bool) (*big.Int, error) {
	if k < 1 {
		return nil, fmt.Errorf("rcg: ring size %d < 1", k)
	}
	n := r.g.N()
	if n > maxCountVertices {
		return nil, fmt.Errorf("rcg: %d local states exceed the transfer-matrix limit %d", n, maxCountVertices)
	}
	// Collect the vertices satisfying pred and build the induced adjacency.
	var keep []int
	for v := 0; v < n; v++ {
		if pred(core.LocalState(v)) {
			keep = append(keep, v)
		}
	}
	m := len(keep)
	if m == 0 {
		return big.NewInt(0), nil
	}
	index := make(map[int]int, m)
	for i, v := range keep {
		index[v] = i
	}
	a := newMatrix(m)
	for i, u := range keep {
		for _, v := range r.g.Succ(u) {
			if j, ok := index[v]; ok {
				a.set(i, j, big.NewInt(1))
			}
		}
	}
	p := a.pow(k)
	return p.trace(), nil
}

// CountLegitimate counts |I(K)| — the number of legitimate global states of
// a ring of size K.
func (r *RCG) CountLegitimate(k int) (*big.Int, error) {
	return r.CountGlobalStates(k, func(s core.LocalState) bool { return r.sys.Legit[s] })
}

// CountDeadlocks counts the global deadlock states of a ring of size K
// (every process locally deadlocked).
func (r *RCG) CountDeadlocks(k int) (*big.Int, error) {
	return r.CountGlobalStates(k, func(s core.LocalState) bool { return r.sys.IsDeadlock[s] })
}

// CountIllegitimateDeadlocks counts the global deadlocks outside I(K):
// all-deadlocked states minus the all-deadlocked-and-legitimate ones
// (I is locally conjunctive, so "outside I" means some view illegitimate).
func (r *RCG) CountIllegitimateDeadlocks(k int) (*big.Int, error) {
	all, err := r.CountDeadlocks(k)
	if err != nil {
		return nil, err
	}
	legit, err := r.CountGlobalStates(k, func(s core.LocalState) bool {
		return r.sys.IsDeadlock[s] && r.sys.Legit[s]
	})
	if err != nil {
		return nil, err
	}
	return new(big.Int).Sub(all, legit), nil
}

// matrix is a dense square big.Int matrix.
type matrix struct {
	n     int
	cells []*big.Int
}

func newMatrix(n int) *matrix {
	m := &matrix{n: n, cells: make([]*big.Int, n*n)}
	for i := range m.cells {
		m.cells[i] = new(big.Int)
	}
	return m
}

func (m *matrix) at(i, j int) *big.Int     { return m.cells[i*m.n+j] }
func (m *matrix) set(i, j int, v *big.Int) { m.cells[i*m.n+j] = v }

func identity(n int) *matrix {
	m := newMatrix(n)
	for i := 0; i < n; i++ {
		m.set(i, i, big.NewInt(1))
	}
	return m
}

func (m *matrix) mul(o *matrix) *matrix {
	out := newMatrix(m.n)
	tmp := new(big.Int)
	for i := 0; i < m.n; i++ {
		for kk := 0; kk < m.n; kk++ {
			a := m.at(i, kk)
			if a.Sign() == 0 {
				continue
			}
			row := kk * m.n
			outRow := i * m.n
			for j := 0; j < m.n; j++ {
				b := o.cells[row+j]
				if b.Sign() == 0 {
					continue
				}
				tmp.Mul(a, b)
				out.cells[outRow+j].Add(out.cells[outRow+j], tmp)
			}
		}
	}
	return out
}

// pow computes m^k by binary exponentiation (k >= 1).
func (m *matrix) pow(k int) *matrix {
	result := identity(m.n)
	base := m
	for k > 0 {
		if k&1 == 1 {
			result = result.mul(base)
		}
		base = base.mul(base)
		k >>= 1
	}
	return result
}

func (m *matrix) trace() *big.Int {
	t := new(big.Int)
	for i := 0; i < m.n; i++ {
		t.Add(t, m.at(i, i))
	}
	return t
}
