module paramring

go 1.22
