# paramring — build, test and experiment targets.

GO ?= go

.PHONY: all build vet test race cover bench bench-verify bench-synth bench-fleet bench-all bench-compare experiments figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... && $(GO) tool cover -func=cover.out | tail -20

bench:
	$(GO) test -bench=. -benchmem ./...

# The regression-gated snapshots (see PERFORMANCE.md). bench-verify and
# bench-synth re-measure the deterministic lrbench grids and overwrite the
# committed baselines at the repo root — run bench-all and commit the
# result whenever a PR moves the numbers on purpose.
bench-verify:
	$(GO) run ./cmd/lrbench -suite verify -o BENCH_verify.json

bench-synth:
	$(GO) run ./cmd/lrbench -suite synth -o BENCH_synth.json

bench-fleet:
	$(GO) run ./cmd/lrbench -suite fleet -o BENCH_fleet.json

bench-all: bench-verify bench-synth bench-fleet

# Re-measure into *.new.json and gate against the committed baselines.
# The default threshold is wider than lrbench's 10% because this target
# usually runs on different hardware than the one that wrote the baseline;
# CI widens it further (see .github/workflows/ci.yml).
BENCH_THRESHOLD ?= 0.25
bench-compare:
	$(GO) run ./cmd/lrbench -suite verify -o BENCH_verify.new.json
	$(GO) run ./cmd/lrbench -suite synth -o BENCH_synth.new.json
	$(GO) run ./cmd/lrbench -suite fleet -o BENCH_fleet.new.json
	$(GO) run ./cmd/lrbench -compare -threshold $(BENCH_THRESHOLD) BENCH_verify.json BENCH_verify.new.json
	$(GO) run ./cmd/lrbench -compare -threshold $(BENCH_THRESHOLD) BENCH_synth.json BENCH_synth.new.json
	$(GO) run ./cmd/lrbench -compare -threshold $(BENCH_THRESHOLD) BENCH_fleet.json BENCH_fleet.new.json

# Regenerate every figure/claim of the paper (summary table).
experiments:
	$(GO) run ./cmd/lrexperiments -summary

# Emit DOT files for the paper's graph figures.
figures:
	mkdir -p figures
	$(GO) run ./cmd/lrviz -protocol matching -graph rcg > figures/fig1-rcg.dot
	$(GO) run ./cmd/lrviz -protocol matchingA -graph rcg -deadlocks > figures/fig2-deadlocks.dot
	$(GO) run ./cmd/lrviz -protocol matchingB -graph rcg -deadlocks > figures/fig3-deadlocks.dot
	$(GO) run ./cmd/lrviz -protocol matchingA -graph ltg > figures/fig4-ltg.dot
	$(GO) run ./cmd/lrviz -protocol gouda-acharya -graph ltg > figures/fig8-ltg.dot
	$(GO) run ./cmd/lrviz -protocol coloring3 -graph ltg > figures/fig9-ltg.dot
	$(GO) run ./cmd/lrviz -protocol agreement-both -graph ltg > figures/fig10-ltg.dot
	$(GO) run ./cmd/lrviz -protocol coloring2 -graph ltg > figures/fig11-ltg.dot
	$(GO) run ./cmd/lrviz -protocol sum-not-two-ss -graph ltg > figures/fig12-ltg.dot

clean:
	rm -rf figures cover.out BENCH_verify.new.json BENCH_synth.new.json BENCH_fleet.new.json
