# paramring — build, test and experiment targets.

GO ?= go

.PHONY: all build vet test race cover bench bench-synth experiments figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... && $(GO) tool cover -func=cover.out | tail -20

bench:
	$(GO) test -bench=. -benchmem ./...

# Seq-vs-par synthesis engine benchmark grid (flat enumeration vs pruned
# sequential vs pruned parallel); writes BENCH_synth.json for the CI artifact.
bench-synth:
	BENCH_SYNTH_JSON=$(CURDIR)/BENCH_synth.json $(GO) test -run TestWriteBenchSynthJSON -v ./internal/synthesis/

# Regenerate every figure/claim of the paper (summary table).
experiments:
	$(GO) run ./cmd/lrexperiments -summary

# Emit DOT files for the paper's graph figures.
figures:
	mkdir -p figures
	$(GO) run ./cmd/lrviz -protocol matching -graph rcg > figures/fig1-rcg.dot
	$(GO) run ./cmd/lrviz -protocol matchingA -graph rcg -deadlocks > figures/fig2-deadlocks.dot
	$(GO) run ./cmd/lrviz -protocol matchingB -graph rcg -deadlocks > figures/fig3-deadlocks.dot
	$(GO) run ./cmd/lrviz -protocol matchingA -graph ltg > figures/fig4-ltg.dot
	$(GO) run ./cmd/lrviz -protocol gouda-acharya -graph ltg > figures/fig8-ltg.dot
	$(GO) run ./cmd/lrviz -protocol coloring3 -graph ltg > figures/fig9-ltg.dot
	$(GO) run ./cmd/lrviz -protocol agreement-both -graph ltg > figures/fig10-ltg.dot
	$(GO) run ./cmd/lrviz -protocol coloring2 -graph ltg > figures/fig11-ltg.dot
	$(GO) run ./cmd/lrviz -protocol sum-not-two-ss -graph ltg > figures/fig12-ltg.dot

clean:
	rm -rf figures cover.out BENCH_synth.json
