// Command lrtree runs the tree-topology extension: verify a top-down tree
// protocol (deadlock-freedom over ALL rooted trees by reachability analysis,
// livelock-freedom by self-disablement) or synthesize convergence for it.
// The non-root representative comes from a guarded-commands file with window
// [-1, 0] (parent, self); the root's legitimacy is an expression over x[0].
//
// Usage:
//
//	lrtree -file specs/coloring3.gc                      # verify over all trees
//	lrtree -file specs/coloring3.gc -synthesize          # add convergence
//	lrtree -file spec.gc -root-legit "x[0] == 0"
package main

import (
	"flag"
	"fmt"

	"paramring/internal/cli"
	"paramring/internal/core"
	"paramring/internal/dsl"
	"paramring/internal/tree"
)

func main() {
	defer cli.ExitOnPanic("lrtree")
	file := flag.String("file", "", "guarded-commands file for the non-root representative (window must be [-1,0])")
	rootLegit := flag.String("root-legit", "", "root legitimacy expression over x[0] (default: always legitimate)")
	synthesize := flag.Bool("synthesize", false, "add convergence actions instead of just verifying")
	validateChains := flag.Int("validate-chains", 6, "cross-validate on chains up to this length (0 disables)")
	flag.Parse()

	if *file == "" {
		cli.Exit("lrtree", 2, fmt.Errorf("-file is required"))
	}
	rep, err := dsl.ParseFile(*file)
	if err != nil {
		fail(err)
	}
	spec := &tree.Spec{Rep: rep, RootLegit: func(int) bool { return true }}
	if *rootLegit != "" {
		f, err := dsl.ParseExpr(*rootLegit, rep.ValueNames(), 0, 0)
		if err != nil {
			fail(fmt.Errorf("parsing -root-legit: %w", err))
		}
		spec.RootLegit = func(x int) bool { return f(core.View{x}) }
	}

	if *synthesize {
		res, err := tree.Synthesize(spec, "conv")
		if err != nil {
			fail(err)
		}
		for _, s := range res.Steps {
			fmt.Println(s)
		}
		sys := rep.Compile()
		for _, t := range res.Chosen {
			fmt.Printf("added: %s\n", sys.FormatTransition(t))
		}
		for _, rc := range res.RootChosen {
			fmt.Printf("added root: %d -> %d\n", rc[0], rc[1])
		}
		spec = res.Spec
		fmt.Println("=> stabilizing over ALL rooted trees")
	} else {
		dl, err := spec.CheckDeadlockFreedom()
		if err != nil {
			fail(err)
		}
		fmt.Printf("deadlock-free over all trees: %v\n", dl.Free)
		if dl.RootWitness != nil {
			fmt.Printf("  root witness: a one-node tree deadlocks illegitimately at value %d\n", *dl.RootWitness)
		}
		if dl.PathWitness != nil {
			fmt.Printf("  path witness (root first): %v\n", dl.PathWitness)
		}
		llFree, llErr := spec.CheckLivelockFreedom()
		if llErr != nil {
			fmt.Printf("livelock-free: not applicable: %v\n", llErr)
		} else {
			fmt.Printf("livelock-free (self-disabling top-down): %v\n", llFree)
		}
		if dl.Free && llFree && llErr == nil {
			fmt.Println("=> stabilizing over ALL rooted trees")
		}
	}

	for n := 1; n <= *validateChains; n++ {
		c, err := tree.NewChain(spec, n)
		if err != nil {
			fail(err)
		}
		fmt.Printf("chain n=%d: strongly converges=%v\n", n, c.StronglyConverges())
	}
}

func fail(err error) {
	cli.Exit("lrtree", 1, err)
}
