// Command lrsim simulates a protocol instance under a chosen daemon, with
// optional transient-fault injection, reporting convergence statistics and
// the enablement dynamics that Section 5 of the paper reasons about.
//
// Usage:
//
//	lrsim -protocol sum-not-two-ss -k 8 -trials 500
//	lrsim -protocol agreement-both -k 6 -scheduler round-robin
//	lrsim -protocol matchingA -k 7 -faults 3
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"paramring/internal/cli"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
	"paramring/internal/sim"
	"paramring/internal/trace"
)

func main() {
	defer cli.ExitOnPanic("lrsim")
	name := flag.String("protocol", "", "protocol name")
	k := flag.Int("k", 6, "ring size")
	trials := flag.Int("trials", 200, "number of runs")
	maxSteps := flag.Int("max-steps", 10000, "step budget per run")
	schedName := flag.String("scheduler", "random", "random, round-robin or rightmost")
	faults := flag.Int("faults", 0, "if > 0, start runs by corrupting this many variables of a legitimate state")
	seed := flag.Int64("seed", 1, "PRNG seed")
	showTrace := flag.Bool("trace", false, "print the first run's computation")
	flag.Parse()

	p, ok := protocols.All()[*name]
	if !ok {
		cli.Exit("lrsim", 2, fmt.Errorf("unknown protocol %q (available: %s)", *name, cli.ZooNames()))
	}
	in, err := explicit.NewInstance(p, *k)
	if err != nil {
		cli.Exit("lrsim", 1, err)
	}
	rng := rand.New(rand.NewSource(*seed))
	newSched := func() sim.Scheduler {
		switch *schedName {
		case "round-robin":
			return &sim.RoundRobin{}
		case "rightmost":
			return sim.Rightmost{}
		default:
			return sim.Random{}
		}
	}

	startState := func() uint64 {
		if *faults <= 0 {
			return sim.RandomState(in, rng)
		}
		// Find a legitimate state to corrupt.
		for {
			s := sim.RandomState(in, rng)
			if in.InI(s) {
				return sim.InjectFaults(in, s, *faults, rng)
			}
		}
	}

	if *showTrace {
		res := sim.Run(in, startState(), newSched(), rng, sim.Options{MaxSteps: *maxSteps, RecordTrace: true})
		comp := trace.Computation{In: in, States: res.Trace, Procs: res.Procs}
		fmt.Printf("run: converged=%v steps=%d\n%s\n\n", res.Converged, res.Steps, comp.String())
	}

	var st sim.Stats
	st.Trials = *trials
	totalSteps, converged, deadlocked, maxSeen := 0, 0, 0, 0
	anyCollision := false
	for i := 0; i < *trials; i++ {
		res := sim.Run(in, startState(), newSched(), rng, sim.Options{MaxSteps: *maxSteps})
		if res.Converged {
			converged++
			totalSteps += res.Steps
			if res.Steps > maxSeen {
				maxSeen = res.Steps
			}
		}
		if res.Deadlocked {
			deadlocked++
		}
		if res.Collisions > 0 {
			anyCollision = true
		}
	}
	fmt.Printf("%s K=%d scheduler=%s trials=%d\n", p.Name(), *k, *schedName, *trials)
	fmt.Printf("converged: %d/%d", converged, *trials)
	if converged > 0 {
		fmt.Printf(" (mean %.1f steps, max %d)", float64(totalSteps)/float64(converged), maxSeen)
	}
	fmt.Println()
	fmt.Printf("deadlocked outside I: %d\n", deadlocked)
	fmt.Printf("collisions observed: %v\n", anyCollision)
}
