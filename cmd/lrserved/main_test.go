package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func(cacheDir string) error {
		return validateFlags(256, 0, 1, 1024, 3,
			time.Minute, 10*time.Minute, 30*time.Second, 100*time.Millisecond, cacheDir)
	}
	if err := ok(""); err != nil {
		t.Fatalf("default configuration rejected: %v", err)
	}
	if err := ok(filepath.Join(t.TempDir(), "cache")); err != nil {
		t.Fatalf("creatable cache dir rejected: %v", err)
	}

	cases := []struct {
		name string
		err  error
		want string
	}{
		{"negative queue", validateFlags(-1, 0, 1, 1024, 3, time.Minute, 10*time.Minute, time.Second, 0, ""), "-queue"},
		{"negative workers", validateFlags(0, -2, 1, 1024, 3, time.Minute, 10*time.Minute, time.Second, 0, ""), "-workers"},
		{"negative engine workers", validateFlags(0, 0, -1, 1024, 3, time.Minute, 10*time.Minute, time.Second, 0, ""), "-engine-workers"},
		{"negative cache size", validateFlags(0, 0, 1, -5, 3, time.Minute, 10*time.Minute, time.Second, 0, ""), "-cache-size"},
		{"negative attempts", validateFlags(0, 0, 1, 0, -1, time.Minute, 10*time.Minute, time.Second, 0, ""), "-max-attempts"},
		{"zero job timeout", validateFlags(0, 0, 1, 0, 3, 0, 10*time.Minute, time.Second, 0, ""), "-job-timeout"},
		{"inverted timeouts", validateFlags(0, 0, 1, 0, 3, time.Hour, time.Minute, time.Second, 0, ""), "below -job-timeout"},
		{"negative retry base", validateFlags(0, 0, 1, 0, 3, time.Minute, 10*time.Minute, time.Second, -time.Second, ""), "-retry-base-delay"},
	}
	for _, tc := range cases {
		if tc.err == nil || !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, tc.err, tc.want)
		}
	}
}

func TestValidateClusterFlags(t *testing.T) {
	if err := validateClusterFlags(true, "", 10*time.Second, 2500*time.Millisecond); err != nil {
		t.Fatalf("default coordinator configuration rejected: %v", err)
	}
	if err := validateClusterFlags(false, "http://coordinator:8420", 10*time.Second, time.Second); err != nil {
		t.Fatalf("valid join configuration rejected: %v", err)
	}
	if err := validateClusterFlags(false, "", 10*time.Second, time.Second); err != nil {
		t.Fatalf("non-cluster defaults rejected: %v", err)
	}

	cases := []struct {
		name string
		err  error
		want string
	}{
		{"both roles", validateClusterFlags(true, "http://x:1", 10*time.Second, time.Second), "mutually exclusive"},
		{"ttl equals heartbeat", validateClusterFlags(true, "", 2*time.Second, 2*time.Second), "must exceed -heartbeat-interval"},
		{"ttl below heartbeat", validateClusterFlags(true, "", time.Second, 5*time.Second), "must exceed -heartbeat-interval"},
		{"zero ttl", validateClusterFlags(true, "", 0, time.Second), "-lease-ttl must be positive"},
		{"zero heartbeat", validateClusterFlags(true, "", 10*time.Second, 0), "-heartbeat-interval must be positive"},
		{"join not a URL", validateClusterFlags(false, "not a url", 10*time.Second, time.Second), "-join"},
		{"join missing scheme", validateClusterFlags(false, "coordinator:8420", 10*time.Second, time.Second), "http(s) base URL"},
	}
	for _, tc := range cases {
		if tc.err == nil || !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, tc.err, tc.want)
		}
	}
}

func TestValidateFlagsUnwritableCacheDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permission bits")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	err := validateFlags(0, 0, 1, 0, 3, time.Minute, 10*time.Minute, time.Second, 0, dir)
	if err == nil || !strings.Contains(err.Error(), "-cache-dir") {
		t.Fatalf("unwritable cache dir: error = %v", err)
	}
}
