// Command lrserved runs the verification service: an HTTP JSON API over a
// bounded job queue, a fixed pool of verification workers, and a
// content-addressed result cache (see internal/service).
//
// Usage:
//
//	lrserved                                  # listen on :8420
//	lrserved -addr :9000 -workers 8 -cache-dir /var/cache/lrserved
//
// Submit a spec and wait for the verdict:
//
//	curl -s localhost:8420/v1/verify -d '{
//	  "spec": "protocol p\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction f: x[0] != x[1] -> x[0] := x[1]\n",
//	  "options": {"cross_validate_max_k": 6},
//	  "wait": true
//	}'
//
// Or submit asynchronously and poll:
//
//	curl -s localhost:8420/v1/verify -d '{"spec": "..."}'   # -> {"id": "job-000001", ...}
//	curl -s localhost:8420/v1/jobs/job-000001
//	curl -s localhost:8420/v1/jobs?state=quarantined
//	curl -s localhost:8420/healthz
//	curl -s localhost:8420/metrics
//
// With -cache-dir set, submissions are journaled before they are
// enqueued: a crash or kill replays unfinished jobs on the next start,
// and jobs whose retries are exhausted land in a persistent quarantine.
//
// Cluster mode splits the service across processes. The coordinator owns
// the queue, journal, and lease table; workers join it over HTTP and pull
// jobs under heartbeat-renewed leases:
//
//	lrserved -coordinator -cache-dir /var/cache/lrserved          # coordinator
//	lrserved -join http://coordinator:8420 -addr :8421 \
//	         -advertise http://worker1:8421                       # worker node
//
// A worker that dies, hangs, or partitions mid-job loses its lease after
// -lease-ttl without a heartbeat and the job re-dispatches with backoff;
// -heartbeat-interval must stay below -lease-ttl. See ARCHITECTURE.md for
// the lease state machine and failure domains.
//
// With -pprof-addr set, a second listener serves the profiling surface
// (net/http/pprof plus a runtime/trace capture endpoint) separately from
// the public API:
//
//	lrserved -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	curl -o trace.out 'http://127.0.0.1:6060/debug/trace?seconds=5'
//	go tool trace trace.out
//
// See PERFORMANCE.md for a worked capture session.
//
// SIGINT/SIGTERM drains gracefully: submissions are rejected, queued jobs
// finish, and a second deadline cancels whatever is still running.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"paramring/internal/cli"
	"paramring/internal/service"
)

// validateFlags fails fast — before any socket binds or journal opens —
// on configurations that would otherwise surface as confusing runtime
// behavior: negative resource bounds, inverted timeouts, a cache
// directory the process cannot write (the journal's fsync guarantees are
// worthless on a read-only mount).
func validateFlags(queue, workers, engineWorkers, cacheSize, maxAttempts int,
	jobTimeout, maxTimeout, drain, retryBase time.Duration, cacheDir string) error {
	switch {
	case queue < 0:
		return fmt.Errorf("-queue must be >= 0, got %d", queue)
	case workers < 0:
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	case engineWorkers < 0:
		return fmt.Errorf("-engine-workers must be >= 0, got %d", engineWorkers)
	case cacheSize < 0:
		return fmt.Errorf("-cache-size must be >= 0, got %d", cacheSize)
	case maxAttempts < 0:
		return fmt.Errorf("-max-attempts must be >= 0, got %d", maxAttempts)
	case jobTimeout <= 0:
		return fmt.Errorf("-job-timeout must be positive, got %v", jobTimeout)
	case maxTimeout <= 0:
		return fmt.Errorf("-max-job-timeout must be positive, got %v", maxTimeout)
	case maxTimeout < jobTimeout:
		return fmt.Errorf("-max-job-timeout %v is below -job-timeout %v", maxTimeout, jobTimeout)
	case drain <= 0:
		return fmt.Errorf("-drain-timeout must be positive, got %v", drain)
	case retryBase < 0:
		return fmt.Errorf("-retry-base-delay must be >= 0, got %v", retryBase)
	}
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return fmt.Errorf("-cache-dir: %w", err)
		}
		probe, err := os.CreateTemp(cacheDir, ".lrserved-probe-*")
		if err != nil {
			return fmt.Errorf("-cache-dir %s is not writable: %w", cacheDir, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	return nil
}

// validateClusterFlags rejects cluster topologies that cannot work: a
// node cannot be coordinator and worker at once, a join target must be a
// well-formed http(s) URL, and a lease that dies faster than its own
// renewal cadence would expire every job mid-heartbeat.
func validateClusterFlags(coordinator bool, join string, leaseTTL, heartbeat time.Duration) error {
	switch {
	case coordinator && join != "":
		return fmt.Errorf("-coordinator and -join are mutually exclusive: a node is either the coordinator or a worker")
	case leaseTTL <= 0:
		return fmt.Errorf("-lease-ttl must be positive, got %v", leaseTTL)
	case heartbeat <= 0:
		return fmt.Errorf("-heartbeat-interval must be positive, got %v", heartbeat)
	case leaseTTL <= heartbeat:
		return fmt.Errorf("-lease-ttl %v must exceed -heartbeat-interval %v (a lease must survive at least one missed renewal)", leaseTTL, heartbeat)
	}
	if join != "" {
		u, err := url.Parse(join)
		if err != nil {
			return fmt.Errorf("-join %q: %v", join, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("-join %q: want an http(s) base URL like http://coordinator:8420", join)
		}
	}
	return nil
}

// workerConfig carries the flag subset a -join worker node uses.
type workerConfig struct {
	addr, coordinator, id, advertise string
	memBudget                        uint64
	slots                            int
	cacheSize, specCacheSize         int
	cacheDir                         string
}

// runWorker is the -join main loop: serve the worker's cache/health
// surface on addr, pull tasks from the coordinator until SIGINT/SIGTERM.
func runWorker(cfg workerConfig) {
	node, err := service.NewWorkerNode(service.WorkerNodeConfig{
		Coordinator:    cfg.coordinator,
		ID:             cfg.id,
		AdvertiseAddr:  cfg.advertise,
		MemBudgetBytes: cfg.memBudget,
		Slots:          cfg.slots,
		CacheSize:      cfg.cacheSize,
		SpecCacheSize:  cfg.specCacheSize,
		CacheDir:       cfg.cacheDir,
	})
	if err != nil {
		cli.Exit("lrserved", 1, err)
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           node.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServe() }()
	go func() { errc <- node.Run(ctx) }()
	fmt.Printf("lrserved: worker serving on %s, joining %s\n", cfg.addr, cfg.coordinator)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cli.Exit("lrserved", 1, err)
		}
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	fmt.Println("lrserved: worker stopped")
}

func main() {
	defer cli.ExitOnPanic("lrserved")
	addr := flag.String("addr", ":8420", "listen address")
	queue := flag.Int("queue", 256, "job queue bound")
	workers := flag.Int("workers", 0, "verification workers (0 = GOMAXPROCS)")
	engineWorkers := flag.Int("engine-workers", 1, "explicit-engine workers per job")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "default per-job deadline")
	maxTimeout := flag.Duration("max-job-timeout", 10*time.Minute, "clamp for client-supplied deadlines")
	cacheSize := flag.Int("cache-size", 1024, "in-memory result cache entries")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result cache and job journal (empty = memory only, no crash recovery)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before in-flight jobs are canceled")
	maxAttempts := flag.Int("max-attempts", 3, "execution attempts per job before poison quarantine")
	retryBase := flag.Duration("retry-base-delay", 100*time.Millisecond, "first retry backoff (doubles per attempt, jittered, capped at 30s)")
	memBudget := flag.Uint64("mem-budget-bytes", 0, "server-wide explicit-engine table budget; jobs estimated over it are rejected or degraded (0 = unlimited)")
	degrade := flag.Bool("degrade-over-budget", false, "run over-budget jobs degraded (1 engine worker, budget-clamped state limit) instead of rejecting them")
	specCacheSize := flag.Int("spec-cache-size", 1024, "compiled-spec cache entries (parse/compile memoization keyed by the canonical spec rendering)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for the pprof/trace profiling endpoints (empty = profiling off); bind to localhost in production")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator: jobs dispatch to lease-holding workers (local pool + remote joiners) instead of the in-process pool")
	join := flag.String("join", "", "coordinator base URL to join as a worker node (mutually exclusive with -coordinator)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "cluster lease lifetime without a heartbeat; expiry re-dispatches the job")
	heartbeatInterval := flag.Duration("heartbeat-interval", 2500*time.Millisecond, "cluster lease renewal cadence; must be below -lease-ttl")
	advertise := flag.String("advertise", "", "base URL peers use to reach this node's federated-cache endpoints (worker mode; empty = serve no cache slice)")
	workerID := flag.String("worker-id", "", "cluster worker id (worker mode; default the hostname)")
	flag.Parse()

	if err := validateFlags(*queue, *workers, *engineWorkers, *cacheSize, *maxAttempts,
		*jobTimeout, *maxTimeout, *drain, *retryBase, *cacheDir); err != nil {
		cli.Exit("lrserved", 2, err)
	}
	if *specCacheSize < 0 {
		cli.Exit("lrserved", 2, fmt.Errorf("-spec-cache-size must be >= 0, got %d", *specCacheSize))
	}
	if err := validateClusterFlags(*coordinator, *join, *leaseTTL, *heartbeatInterval); err != nil {
		cli.Exit("lrserved", 2, err)
	}

	if *join != "" {
		runWorker(workerConfig{
			addr: *addr, coordinator: *join, id: *workerID, advertise: *advertise,
			memBudget: *memBudget, slots: *workers,
			cacheSize: *cacheSize, specCacheSize: *specCacheSize, cacheDir: *cacheDir,
		})
		return
	}

	var clusterCfg *service.ClusterConfig
	if *coordinator {
		localWorkers := *workers
		if localWorkers <= 0 {
			localWorkers = runtime.GOMAXPROCS(0)
		}
		clusterCfg = &service.ClusterConfig{
			LeaseTTL:             *leaseTTL,
			HeartbeatInterval:    *heartbeatInterval,
			LocalWorkers:         localWorkers,
			WorkerMemBudgetBytes: *memBudget,
		}
	}

	svc, err := service.New(service.Config{
		QueueSize:         *queue,
		Workers:           *workers,
		EngineWorkers:     *engineWorkers,
		DefaultTimeout:    *jobTimeout,
		MaxTimeout:        *maxTimeout,
		CacheSize:         *cacheSize,
		SpecCacheSize:     *specCacheSize,
		CacheDir:          *cacheDir,
		MaxAttempts:       *maxAttempts,
		RetryBaseDelay:    *retryBase,
		MemoryBudgetBytes: *memBudget,
		DegradeOverBudget: *degrade,
		Cluster:           clusterCfg,
	})
	if err != nil {
		cli.Exit("lrserved", 1, err)
	}
	svc.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Opt-in profiling on its own listener: profile scrapes and trace
	// captures stay off the public API surface, and a firewall rule (or a
	// localhost bind) keeps them operator-only. The server is deliberately
	// not drained on shutdown — a capture mid-drain is exactly when an
	// operator wants one.
	if *pprofAddr != "" {
		dbg := &http.Server{
			Addr:              *pprofAddr,
			Handler:           service.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "lrserved: pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("lrserved: pprof/trace endpoints on %s\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *coordinator {
		fmt.Printf("lrserved: coordinator listening on %s (queue %d, %d local workers, lease TTL %v)\n",
			*addr, *queue, clusterCfg.LocalWorkers, *leaseTTL)
	} else {
		fmt.Printf("lrserved: listening on %s (queue %d, %d workers)\n", *addr, *queue, *workers)
	}

	select {
	case err := <-errc:
		cli.Exit("lrserved", 1, err)
	case <-ctx.Done():
	}

	fmt.Println("lrserved: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err := svc.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		cli.Exit("lrserved", 1, err)
	}
	fmt.Println("lrserved: drained")
}
