// Command lrserved runs the verification service: an HTTP JSON API over a
// bounded job queue, a fixed pool of verification workers, and a
// content-addressed result cache (see internal/service).
//
// Usage:
//
//	lrserved                                  # listen on :8420
//	lrserved -addr :9000 -workers 8 -cache-dir /var/cache/lrserved
//
// Submit a spec and wait for the verdict:
//
//	curl -s localhost:8420/v1/verify -d '{
//	  "spec": "protocol p\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction f: x[0] != x[1] -> x[0] := x[1]\n",
//	  "options": {"cross_validate_max_k": 6},
//	  "wait": true
//	}'
//
// Or submit asynchronously and poll:
//
//	curl -s localhost:8420/v1/verify -d '{"spec": "..."}'   # -> {"id": "job-000001", ...}
//	curl -s localhost:8420/v1/jobs/job-000001
//	curl -s localhost:8420/healthz
//	curl -s localhost:8420/metrics
//
// SIGINT/SIGTERM drains gracefully: submissions are rejected, queued jobs
// finish, and a second deadline cancels whatever is still running.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paramring/internal/cli"
	"paramring/internal/service"
)

func main() {
	defer cli.ExitOnPanic("lrserved")
	addr := flag.String("addr", ":8420", "listen address")
	queue := flag.Int("queue", 256, "job queue bound")
	workers := flag.Int("workers", 0, "verification workers (0 = GOMAXPROCS)")
	engineWorkers := flag.Int("engine-workers", 1, "explicit-engine workers per job")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "default per-job deadline")
	maxTimeout := flag.Duration("max-job-timeout", 10*time.Minute, "clamp for client-supplied deadlines")
	cacheSize := flag.Int("cache-size", 1024, "in-memory result cache entries")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result cache (empty = memory only)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before in-flight jobs are canceled")
	flag.Parse()

	svc, err := service.New(service.Config{
		QueueSize:      *queue,
		Workers:        *workers,
		EngineWorkers:  *engineWorkers,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		CacheSize:      *cacheSize,
		CacheDir:       *cacheDir,
	})
	if err != nil {
		cli.Exit("lrserved", 1, err)
	}
	svc.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("lrserved: listening on %s (queue %d, %d workers)\n", *addr, *queue, *workers)

	select {
	case err := <-errc:
		cli.Exit("lrserved", 1, err)
	case <-ctx.Done():
	}

	fmt.Println("lrserved: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err := svc.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		cli.Exit("lrserved", 1, err)
	}
	fmt.Println("lrserved: drained")
}
