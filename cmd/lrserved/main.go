// Command lrserved runs the verification service: an HTTP JSON API over a
// bounded job queue, a fixed pool of verification workers, and a
// content-addressed result cache (see internal/service).
//
// Usage:
//
//	lrserved                                  # listen on :8420
//	lrserved -addr :9000 -workers 8 -cache-dir /var/cache/lrserved
//
// Submit a spec and wait for the verdict:
//
//	curl -s localhost:8420/v1/verify -d '{
//	  "spec": "protocol p\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction f: x[0] != x[1] -> x[0] := x[1]\n",
//	  "options": {"cross_validate_max_k": 6},
//	  "wait": true
//	}'
//
// Or submit asynchronously and poll:
//
//	curl -s localhost:8420/v1/verify -d '{"spec": "..."}'   # -> {"id": "job-000001", ...}
//	curl -s localhost:8420/v1/jobs/job-000001
//	curl -s localhost:8420/v1/jobs?state=quarantined
//	curl -s localhost:8420/healthz
//	curl -s localhost:8420/metrics
//
// With -cache-dir set, submissions are journaled before they are
// enqueued: a crash or kill replays unfinished jobs on the next start,
// and jobs whose retries are exhausted land in a persistent quarantine.
//
// With -pprof-addr set, a second listener serves the profiling surface
// (net/http/pprof plus a runtime/trace capture endpoint) separately from
// the public API:
//
//	lrserved -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	curl -o trace.out 'http://127.0.0.1:6060/debug/trace?seconds=5'
//	go tool trace trace.out
//
// See PERFORMANCE.md for a worked capture session.
//
// SIGINT/SIGTERM drains gracefully: submissions are rejected, queued jobs
// finish, and a second deadline cancels whatever is still running.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paramring/internal/cli"
	"paramring/internal/service"
)

// validateFlags fails fast — before any socket binds or journal opens —
// on configurations that would otherwise surface as confusing runtime
// behavior: negative resource bounds, inverted timeouts, a cache
// directory the process cannot write (the journal's fsync guarantees are
// worthless on a read-only mount).
func validateFlags(queue, workers, engineWorkers, cacheSize, maxAttempts int,
	jobTimeout, maxTimeout, drain, retryBase time.Duration, cacheDir string) error {
	switch {
	case queue < 0:
		return fmt.Errorf("-queue must be >= 0, got %d", queue)
	case workers < 0:
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	case engineWorkers < 0:
		return fmt.Errorf("-engine-workers must be >= 0, got %d", engineWorkers)
	case cacheSize < 0:
		return fmt.Errorf("-cache-size must be >= 0, got %d", cacheSize)
	case maxAttempts < 0:
		return fmt.Errorf("-max-attempts must be >= 0, got %d", maxAttempts)
	case jobTimeout <= 0:
		return fmt.Errorf("-job-timeout must be positive, got %v", jobTimeout)
	case maxTimeout <= 0:
		return fmt.Errorf("-max-job-timeout must be positive, got %v", maxTimeout)
	case maxTimeout < jobTimeout:
		return fmt.Errorf("-max-job-timeout %v is below -job-timeout %v", maxTimeout, jobTimeout)
	case drain <= 0:
		return fmt.Errorf("-drain-timeout must be positive, got %v", drain)
	case retryBase < 0:
		return fmt.Errorf("-retry-base-delay must be >= 0, got %v", retryBase)
	}
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return fmt.Errorf("-cache-dir: %w", err)
		}
		probe, err := os.CreateTemp(cacheDir, ".lrserved-probe-*")
		if err != nil {
			return fmt.Errorf("-cache-dir %s is not writable: %w", cacheDir, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	return nil
}

func main() {
	defer cli.ExitOnPanic("lrserved")
	addr := flag.String("addr", ":8420", "listen address")
	queue := flag.Int("queue", 256, "job queue bound")
	workers := flag.Int("workers", 0, "verification workers (0 = GOMAXPROCS)")
	engineWorkers := flag.Int("engine-workers", 1, "explicit-engine workers per job")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "default per-job deadline")
	maxTimeout := flag.Duration("max-job-timeout", 10*time.Minute, "clamp for client-supplied deadlines")
	cacheSize := flag.Int("cache-size", 1024, "in-memory result cache entries")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result cache and job journal (empty = memory only, no crash recovery)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before in-flight jobs are canceled")
	maxAttempts := flag.Int("max-attempts", 3, "execution attempts per job before poison quarantine")
	retryBase := flag.Duration("retry-base-delay", 100*time.Millisecond, "first retry backoff (doubles per attempt, jittered, capped at 30s)")
	memBudget := flag.Uint64("mem-budget-bytes", 0, "server-wide explicit-engine table budget; jobs estimated over it are rejected or degraded (0 = unlimited)")
	degrade := flag.Bool("degrade-over-budget", false, "run over-budget jobs degraded (1 engine worker, budget-clamped state limit) instead of rejecting them")
	specCacheSize := flag.Int("spec-cache-size", 1024, "compiled-spec cache entries (parse/compile memoization keyed by the canonical spec rendering)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for the pprof/trace profiling endpoints (empty = profiling off); bind to localhost in production")
	flag.Parse()

	if err := validateFlags(*queue, *workers, *engineWorkers, *cacheSize, *maxAttempts,
		*jobTimeout, *maxTimeout, *drain, *retryBase, *cacheDir); err != nil {
		cli.Exit("lrserved", 2, err)
	}
	if *specCacheSize < 0 {
		cli.Exit("lrserved", 2, fmt.Errorf("-spec-cache-size must be >= 0, got %d", *specCacheSize))
	}

	svc, err := service.New(service.Config{
		QueueSize:         *queue,
		Workers:           *workers,
		EngineWorkers:     *engineWorkers,
		DefaultTimeout:    *jobTimeout,
		MaxTimeout:        *maxTimeout,
		CacheSize:         *cacheSize,
		SpecCacheSize:     *specCacheSize,
		CacheDir:          *cacheDir,
		MaxAttempts:       *maxAttempts,
		RetryBaseDelay:    *retryBase,
		MemoryBudgetBytes: *memBudget,
		DegradeOverBudget: *degrade,
	})
	if err != nil {
		cli.Exit("lrserved", 1, err)
	}
	svc.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Opt-in profiling on its own listener: profile scrapes and trace
	// captures stay off the public API surface, and a firewall rule (or a
	// localhost bind) keeps them operator-only. The server is deliberately
	// not drained on shutdown — a capture mid-drain is exactly when an
	// operator wants one.
	if *pprofAddr != "" {
		dbg := &http.Server{
			Addr:              *pprofAddr,
			Handler:           service.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "lrserved: pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("lrserved: pprof/trace endpoints on %s\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("lrserved: listening on %s (queue %d, %d workers)\n", *addr, *queue, *workers)

	select {
	case err := <-errc:
		cli.Exit("lrserved", 1, err)
	case <-ctx.Done():
	}

	fmt.Println("lrserved: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err := svc.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		cli.Exit("lrserved", 1, err)
	}
	fmt.Println("lrserved: drained")
}
