// Command lrsynth runs the paper's Section 6 synthesis methodology on a
// base protocol, printing the step-by-step narrative (Resolve computation,
// candidate generation, NPL/PL search) and the synthesized protocol.
//
// Usage:
//
//	lrsynth -protocol agreement
//	lrsynth -protocol sum-not-two -all
//	lrsynth -protocol coloring3            # reproduces the paper's failure
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"paramring/internal/cli"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/synthesis"
)

func main() {
	defer cli.ExitOnPanic("lrsynth")
	name := flag.String("protocol", "", "base protocol name (agreement, coloring2, coloring3, sum-not-two, ...)")
	file := flag.String("file", "", "guarded-commands file (.gc) to synthesize from")
	all := flag.Bool("all", false, "enumerate every accepted candidate set")
	validate := flag.Int("validate", 7, "cross-validate accepted solutions with the explicit checker up to this K (0 disables)")
	workers := flag.Int("workers", 0, "parallel search workers; 0 selects GOMAXPROCS (the result is identical for any count)")
	maxAssignments := flag.Int("max-assignments", 1<<20, "abort when a Resolve set admits more candidate assignments than this")
	flag.Parse()

	if *workers < 0 {
		cli.Exit("lrsynth", 2, fmt.Errorf("-workers must be >= 0 (0 selects GOMAXPROCS), got %d", *workers))
	}
	if *maxAssignments < 1 {
		cli.Exit("lrsynth", 2, fmt.Errorf("-max-assignments must be >= 1, got %d", *maxAssignments))
	}
	p, err := cli.LoadProtocol(*name, *file)
	if err != nil {
		cli.Exit("lrsynth", 2, err)
	}

	res, err := synthesis.Synthesize(p, synthesis.Options{
		All:            *all,
		Workers:        *workers,
		MaxAssignments: *maxAssignments,
	})
	if res != nil {
		for _, s := range res.Steps {
			fmt.Println(s)
		}
		st := res.Stats
		fmt.Printf("\nsearch: %d candidate(s), %d evaluated, %d pruned in %d subtree cut(s), %d deadlock-rejected, memo %d hit(s) / %d miss(es), %d worker(s)\n",
			st.Candidates, st.Evaluated, st.PrunedAssignments, st.PrunedSubtrees, st.DeadlockRejected, st.MemoHits, st.MemoMisses, st.Workers)
	}
	if err != nil {
		if errors.Is(err, synthesis.ErrNoSolution) {
			fmt.Println("\nresult: FAILURE — the methodology declares failure, as the paper does for this input")
			os.Exit(1)
		}
		cli.Exit("lrsynth", 1, err)
	}

	sys := p.Compile()
	fmt.Printf("\nresult: %d accepted solution(s)\n", len(res.Accepted))
	for i, cand := range res.Accepted {
		fmt.Printf("\nsolution %d (phase %s): %s\n", i+1, cand.Phase, ltg.FormatTArcs(sys, cand.Chosen))
		fmt.Printf("  provably strongly self-stabilizing for EVERY ring size K\n")
		if *validate > 1 {
			fmt.Printf("  explicit cross-validation:")
			for k := 2; k <= *validate; k++ {
				in, err := explicit.NewInstance(cand.Protocol, k)
				if err != nil {
					cli.Exit("lrsynth", 1, err)
				}
				fmt.Printf(" K=%d:%v", k, in.CheckStrongConvergence().Converges)
			}
			fmt.Println()
		}
	}
}
