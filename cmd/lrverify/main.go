// Command lrverify runs the paper's local-reasoning checks on a protocol
// from the zoo: Theorem 4.2 (deadlock-freedom for every ring size K) and
// Theorem 5.14 (livelock-freedom for every K on unidirectional rings),
// entirely in the local state space of the representative process.
//
// Usage:
//
//	lrverify -protocol agreement-t01
//	lrverify -protocol matchingB        # prints the deadlock cycles
//	lrverify -protocol matchingA -xk 7  # explicit oracle at K=2..7
//	lrverify -list
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync"

	"paramring/internal/cli"
	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
	"paramring/internal/trace"
)

func main() {
	defer cli.ExitOnPanic("lrverify")
	name := flag.String("protocol", "", "protocol name (see -list)")
	file := flag.String("file", "", "guarded-commands file (.gc) to verify instead of a zoo protocol")
	list := flag.Bool("list", false, "list available protocols")
	maxT := flag.Int("max-tarcs", 16, "exact livelock search limit (2^n subsets)")
	explain := flag.Bool("explain", false, "print the full pseudo-livelock/trail diagnosis")
	xk := flag.Int("xk", 0, "cross-validate with the explicit-state oracle for every ring size 2..xk")
	workers := flag.Int("workers", 0, "explicit-engine worker count for -xk (0 = GOMAXPROCS)")
	maxStates := flag.Uint64("max-states", 0, "explicit-engine state-count guard for -xk (0 = engine default of 1<<28)")
	flag.Parse()

	if *list {
		fmt.Println("available protocols:", cli.ZooNames())
		return
	}
	p, err := cli.LoadProtocol(*name, *file)
	if err != nil {
		cli.Exit("lrverify", 2, err)
	}

	sys := p.Compile()
	lo, hi := p.Window()
	fmt.Printf("protocol %s: domain %d, window [%d,%d], %d local states, %d local transitions\n",
		p.Name(), p.Domain(), lo, hi, sys.N(), len(sys.Trans))
	fmt.Printf("unidirectional: %v, self-disabling: %v\n", p.Unidirectional(), sys.IsSelfDisabling())

	r := rcg.Build(sys)
	rep, err := r.CheckDeadlockFreedom(0)
	if err != nil {
		cli.Exit("lrverify", 1, err)
	}
	fmt.Printf("\nTheorem 4.2 (deadlock-freedom for every K): %v\n", rep.Free)
	fmt.Printf("  local deadlocks: %d (%d illegitimate)\n", len(rep.LocalDeadlocks), len(rep.IllegitimateDeadlocks))
	for _, c := range rep.BadCycles {
		fmt.Printf("  illegitimate deadlock cycle (ring sizes %d, 2*%d, ...): %s\n", len(c), len(c), r.FormatCycle(c))
	}
	if !rep.Free {
		sizes := r.DeadlockRingSizes(2, 16)
		fmt.Print("  deadlocking ring sizes up to 16:")
		for k := 2; k <= 16; k++ {
			if sizes[k] {
				fmt.Printf(" %d", k)
			}
		}
		fmt.Println()
		fmt.Print("  illegitimate deadlock counts:")
		for _, k := range []int{4, 6, 8, 16, 32} {
			if c, err := r.CountIllegitimateDeadlocks(k); err == nil {
				fmt.Printf(" K=%d:%s", k, c)
			}
		}
		fmt.Println()
	}
	fmt.Print("  |I(K)| (transfer matrix):")
	for _, k := range []int{4, 8, 16, 64} {
		if c, err := r.CountLegitimate(k); err == nil {
			fmt.Printf(" K=%d:%s", k, c)
		}
	}
	fmt.Println()

	llRep, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{MaxTArcs: *maxT})
	if err != nil {
		fmt.Printf("\nTheorem 5.14 (livelock-freedom): not applicable: %v\n", err)
		return
	}
	scope := "every K"
	if llRep.ContiguousOnly {
		scope = "contiguous livelocks only (bidirectional ring)"
	}
	fmt.Printf("\nTheorem 5.14 (livelock-freedom, %s): %v\n", scope, llRep.Verdict)
	fmt.Printf("  %s\n", llRep.Reason)
	if llRep.Witness != nil {
		fmt.Printf("  witness t-arcs: %s\n", ltg.FormatTArcs(sys, llRep.Witness.TArcs))
		conf, err := ltg.ConfirmWitness(p, llRep.Witness, 7)
		if err != nil {
			cli.Exit("lrverify", 1, fmt.Errorf("confirming witness: %w", err))
		}
		if conf.Confirmed {
			fmt.Printf("  witness CONFIRMED: real livelock at K=%d\n", conf.K)
		} else {
			fmt.Printf("  witness not reconstructible for K<=%d (possibly spurious — Theorem 5.14 is sufficient, not necessary)\n", conf.MaxKChecked)
		}
	}

	if *explain {
		if d, err := ltg.Diagnose(p, ltg.CheckOptions{MaxTArcs: *maxT}); err == nil {
			fmt.Println("\ndiagnosis:")
			fmt.Print(d.Summary(sys))
		} else {
			fmt.Printf("\ndiagnosis unavailable: %v\n", err)
		}
	}

	if rep.Free && llRep.Verdict == ltg.VerdictFree && !llRep.ContiguousOnly {
		fmt.Println("\n=> strongly self-stabilizing for EVERY ring size K (Proposition 2.1)")
	}

	if *xk > 1 {
		if err := crossValidate(p, *xk, *workers, *maxStates); err != nil {
			cli.Exit("lrverify", 1, err)
		}
	}
}

// crossValidate model-checks every ring size 2..maxK with the explicit
// oracle, fanning the per-K instances out across workers and printing the
// results as one K-ordered table (so the output is independent of
// scheduling). The table-KiB column is the resident per-state table of each
// instance (one bit per global state), so the cost of pushing K higher is
// visible next to the state counts.
func crossValidate(p *core.Protocol, maxK, workers int, maxStates uint64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type row struct {
		states     uint64
		tableBytes uint64
		illegit    int
		converge   bool
		livelock   bool
		err        error
	}
	rows := make([]row, maxK+1)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for k := 2; k <= maxK; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			opts := []explicit.Option{explicit.WithWorkers(workers)}
			if maxStates > 0 {
				opts = append(opts, explicit.WithMaxStates(maxStates))
			}
			in, err := explicit.NewInstance(p, k, opts...)
			if err != nil {
				rows[k].err = err
				return
			}
			rep := in.CheckStrongConvergence()
			rows[k] = row{
				states:     in.NumStates(),
				tableBytes: in.TableBytes(),
				illegit:    len(in.IllegitimateDeadlocks()),
				converge:   rep.Converges,
				livelock:   rep.LivelockWitness != nil,
			}
		}(k)
	}
	wg.Wait()
	fmt.Printf("\nexplicit cross-validation (K=2..%d, %d workers):\n", maxK, workers)
	tb := trace.NewTable("K", "global states", "table KiB", "illegitimate deadlocks", "livelock", "strongly converges")
	for k := 2; k <= maxK; k++ {
		if rows[k].err != nil {
			return fmt.Errorf("K=%d: %w", k, rows[k].err)
		}
		tb.AddRow(k, rows[k].states, (rows[k].tableBytes+1023)/1024, rows[k].illegit, rows[k].livelock, rows[k].converge)
	}
	fmt.Print(tb.String())
	return nil
}
