// Command lrverify runs the paper's local-reasoning checks on a protocol
// from the zoo: Theorem 4.2 (deadlock-freedom for every ring size K) and
// Theorem 5.14 (livelock-freedom for every K on unidirectional rings),
// entirely in the local state space of the representative process — plus
// the invariant lane (trap/structural-invariant certificates, package
// invariant) and the explicit per-K oracle, selected with -lanes.
//
// Usage:
//
//	lrverify -protocol agreement-t01
//	lrverify -protocol matchingB            # prints the deadlock cycles
//	lrverify -protocol matchingA -xk 7      # explicit oracle at K=2..7
//	lrverify -protocol mis -lanes theorem,invariant,explicit
//	lrverify -protocol matchingA -lanes theorem   # theorems only
//	lrverify -list
//
// Exit codes:
//
//	0 — every property settled conclusively (proved or refuted), lanes agree
//	1 — runtime failure
//	2 — usage/input error
//	3 — at least one property inconclusive in every lane that ran
//	4 — cross-lane disagreement (a tool bug, never a protocol property)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"paramring/internal/cli"
	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
	"paramring/internal/trace"
	"paramring/internal/verify"
)

func main() {
	defer cli.ExitOnPanic("lrverify")
	name := flag.String("protocol", "", "protocol name (see -list)")
	file := flag.String("file", "", "guarded-commands file (.gc) to verify instead of a zoo protocol")
	list := flag.Bool("list", false, "list available protocols")
	maxT := flag.Int("max-tarcs", 16, "exact livelock search limit (2^n subsets)")
	explain := flag.Bool("explain", false, "print the full pseudo-livelock/trail diagnosis")
	lanes := flag.String("lanes", "theorem,invariant",
		"comma-separated verification lanes: theorem (always on), invariant (symbolic certificates), explicit (per-K oracle up to -xk, default 6)")
	xk := flag.Int("xk", 0, "cross-validate with the explicit-state oracle for every ring size 2..xk (implies the explicit lane)")
	workers := flag.Int("workers", 0, "explicit-engine worker count for the explicit lane (0 = GOMAXPROCS)")
	maxStates := flag.Uint64("max-states", 0, "explicit-engine state-count guard for the explicit lane (0 = engine default of 1<<28)")
	flag.Parse()

	if *list {
		fmt.Println("available protocols:", cli.ZooNames())
		return
	}
	laneSet, err := parseLanes(*lanes)
	if err != nil {
		cli.Exit("lrverify", 2, err)
	}
	if *xk > 1 {
		laneSet["explicit"] = true
	}
	xval := 0
	if laneSet["explicit"] {
		xval = *xk
		if xval <= 1 {
			xval = 6
		}
	}
	p, err := cli.LoadProtocol(*name, *file)
	if err != nil {
		cli.Exit("lrverify", 2, err)
	}

	sys := p.Compile()
	lo, hi := p.Window()
	fmt.Printf("protocol %s: domain %d, window [%d,%d], %d local states, %d local transitions\n",
		p.Name(), p.Domain(), lo, hi, sys.N(), len(sys.Trans))
	fmt.Printf("unidirectional: %v, self-disabling: %v\n", p.Unidirectional(), sys.IsSelfDisabling())

	rep, err := verify.Check(p, verify.Options{
		Check:             ltg.CheckOptions{MaxTArcs: *maxT},
		Invariant:         laneSet["invariant"],
		CrossValidateMaxK: xval,
		Workers:           *workers,
		MaxStates:         *maxStates,
	})
	if err != nil {
		cli.Exit("lrverify", 1, err)
	}

	printTheorem42(p, sys, rep)
	printTheorem514(p, sys, rep, *maxT, *explain)
	if laneSet["invariant"] {
		printInvariantLane(rep)
	}
	if rep.SelfStabilizing {
		fmt.Println("\n=> strongly self-stabilizing for EVERY ring size K (Proposition 2.1)")
	}
	if xval > 1 {
		if err := crossValidate(p, xval, *workers, *maxStates); err != nil {
			cli.Exit("lrverify", 1, err)
		}
	}
	printLaneTable(rep, laneSet, xval)

	if len(rep.Disagreements) > 0 {
		fmt.Println("\nLANE DISAGREEMENT (tool bug, verdicts untrustworthy):")
		for _, d := range rep.Disagreements {
			fmt.Printf("  %s\n", d)
		}
	}
	if code := cli.VerdictExitCode(rep); code != 0 {
		switch code {
		case 3:
			fmt.Println("\nverdict: inconclusive in every lane that ran (exit 3)")
		case 4:
			fmt.Println("\nverdict: lane disagreement (exit 4)")
		}
		os.Exit(code)
	}
}

// parseLanes validates the -lanes selector. The theorem lane is the
// backbone of the facade and cannot be switched off.
func parseLanes(s string) (map[string]bool, error) {
	set := map[string]bool{}
	for _, l := range strings.Split(s, ",") {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		switch l {
		case "theorem", "invariant", "explicit":
			set[l] = true
		default:
			return nil, fmt.Errorf("unknown lane %q (available: theorem, invariant, explicit)", l)
		}
	}
	if !set["theorem"] {
		return nil, fmt.Errorf("the theorem lane cannot be disabled (got -lanes %q)", s)
	}
	return set, nil
}

func printTheorem42(p *core.Protocol, sys *core.System, rep *verify.Report) {
	r := rcg.Build(sys)
	dl := rep.DeadlockDetail
	fmt.Printf("\nTheorem 4.2 (deadlock-freedom for every K): %v\n", dl.Free)
	fmt.Printf("  local deadlocks: %d (%d illegitimate)\n", len(dl.LocalDeadlocks), len(dl.IllegitimateDeadlocks))
	for _, c := range dl.BadCycles {
		fmt.Printf("  illegitimate deadlock cycle (ring sizes %d, 2*%d, ...): %s\n", len(c), len(c), r.FormatCycle(c))
	}
	if !dl.Free {
		sizes := r.DeadlockRingSizes(2, 16)
		fmt.Print("  deadlocking ring sizes up to 16:")
		for k := 2; k <= 16; k++ {
			if sizes[k] {
				fmt.Printf(" %d", k)
			}
		}
		fmt.Println()
		fmt.Print("  illegitimate deadlock counts:")
		for _, k := range []int{4, 6, 8, 16, 32} {
			if c, err := r.CountIllegitimateDeadlocks(k); err == nil {
				fmt.Printf(" K=%d:%s", k, c)
			}
		}
		fmt.Println()
	}
	fmt.Print("  |I(K)| (transfer matrix):")
	for _, k := range []int{4, 8, 16, 64} {
		if c, err := r.CountLegitimate(k); err == nil {
			fmt.Printf(" K=%d:%s", k, c)
		}
	}
	fmt.Println()
}

func printTheorem514(p *core.Protocol, sys *core.System, rep *verify.Report, maxT int, explain bool) {
	if rep.LivelockSkipped != "" {
		fmt.Printf("\nTheorem 5.14 (livelock-freedom): not applicable: %v\n", rep.LivelockSkipped)
		return
	}
	ll := rep.LivelockDetail
	scope := "every K"
	if ll.ContiguousOnly {
		scope = "contiguous livelocks only (bidirectional ring)"
	}
	fmt.Printf("\nTheorem 5.14 (livelock-freedom, %s): %v\n", scope, ll.Verdict)
	fmt.Printf("  %s\n", ll.Reason)
	if ll.Witness != nil {
		fmt.Printf("  witness t-arcs: %s\n", ltg.FormatTArcs(sys, ll.Witness.TArcs))
		if rep.LivelockTheorem == verify.Refuted {
			fmt.Printf("  witness CONFIRMED: real livelock at K=%d\n", rep.LivelockWitnessK)
		} else {
			fmt.Println("  witness not reconstructible for K<=7 (possibly spurious — Theorem 5.14 is sufficient, not necessary)")
		}
	}
	if explain {
		if d, err := ltg.Diagnose(p, ltg.CheckOptions{MaxTArcs: maxT}); err == nil {
			fmt.Println("\ndiagnosis:")
			fmt.Print(d.Summary(sys))
		} else {
			fmt.Printf("\ndiagnosis unavailable: %v\n", err)
		}
	}
}

func printInvariantLane(rep *verify.Report) {
	if rep.InvariantSkipped != "" {
		fmt.Printf("\ninvariant lane: skipped: %s\n", rep.InvariantSkipped)
		return
	}
	fmt.Printf("\ninvariant lane (certified, all K): deadlock %v, livelock %v, closure %v\n",
		rep.InvariantDeadlock, rep.InvariantLivelock, rep.InvariantClosure)
	fmt.Printf("  %d invariants, certificate %d bytes (re-validated by the independent checker)\n",
		rep.InvariantCount, rep.InvariantCertBytes)
	d := rep.InvariantDetail
	if d == nil {
		return
	}
	if len(d.Certificate.Traps) > 0 {
		fmt.Printf("  value traps: %v\n", d.Certificate.Traps)
	}
	if d.Certificate.Termination != nil {
		fmt.Printf("  termination potential over %d recurrent t-arcs (%d LP constraints, %d pivots)\n",
			d.Certificate.Termination.RecurrentTArcs, d.Constraints, d.Pivots)
	}
	if rep.LivelockProvedByInvariant {
		fmt.Println("  => livelock-freedom for EVERY K settled by this lane")
	}
	if d.LivelockWitnessK > 0 {
		fmt.Printf("  => real livelock on the size-%d ring (certified witness cycle)\n", d.LivelockWitnessK)
	}
	for _, n := range d.Notes {
		fmt.Printf("  note: %s\n", n)
	}
}

// printLaneTable renders the per-lane verdict columns for the selected
// lanes — one row per lane, so conflicting verdicts sit side by side.
func printLaneTable(rep *verify.Report, laneSet map[string]bool, xval int) {
	fmt.Println("\nper-lane verdicts:")
	tb := trace.NewTable("lane", "deadlock-freedom", "livelock-freedom", "closure")
	tb.AddRow("theorem", rep.Deadlock, rep.LivelockTheorem, "-")
	if laneSet["invariant"] {
		if rep.InvariantSkipped != "" {
			tb.AddRow("invariant", "skipped", "skipped", "skipped")
		} else {
			tb.AddRow("invariant", rep.InvariantDeadlock, rep.InvariantLivelock, rep.InvariantClosure)
		}
	}
	if xval > 1 {
		cell := fmt.Sprintf("no conflict (K<=%d)", xval)
		if len(rep.Disagreements) > 0 {
			cell = "CONFLICT"
		}
		tb.AddRow("explicit", cell, cell, "-")
	}
	fmt.Print(tb.String())
	fmt.Printf("overall: deadlock-freedom %v, livelock-freedom %v\n", rep.Deadlock, rep.Livelock)
}

// crossValidate model-checks every ring size 2..maxK with the explicit
// oracle, fanning the per-K instances out across workers and printing the
// results as one K-ordered table (so the output is independent of
// scheduling). The table-KiB column is the resident per-state table of each
// instance (one bit per global state), so the cost of pushing K higher is
// visible next to the state counts.
func crossValidate(p *core.Protocol, maxK, workers int, maxStates uint64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type row struct {
		states     uint64
		tableBytes uint64
		illegit    int
		converge   bool
		livelock   bool
		err        error
	}
	rows := make([]row, maxK+1)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for k := 2; k <= maxK; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			opts := []explicit.Option{explicit.WithWorkers(workers)}
			if maxStates > 0 {
				opts = append(opts, explicit.WithMaxStates(maxStates))
			}
			in, err := explicit.NewInstance(p, k, opts...)
			if err != nil {
				rows[k].err = err
				return
			}
			rep := in.CheckStrongConvergence()
			rows[k] = row{
				states:     in.NumStates(),
				tableBytes: in.TableBytes(),
				illegit:    len(in.IllegitimateDeadlocks()),
				converge:   rep.Converges,
				livelock:   rep.LivelockWitness != nil,
			}
		}(k)
	}
	wg.Wait()
	fmt.Printf("\nexplicit cross-validation (K=2..%d, %d workers):\n", maxK, workers)
	tb := trace.NewTable("K", "global states", "table KiB", "illegitimate deadlocks", "livelock", "strongly converges")
	for k := 2; k <= maxK; k++ {
		if rows[k].err != nil {
			return fmt.Errorf("K=%d: %w", k, rows[k].err)
		}
		tb.AddRow(k, rows[k].states, (rows[k].tableBytes+1023)/1024, rows[k].illegit, rows[k].livelock, rows[k].converge)
	}
	fmt.Print(tb.String())
	return nil
}
