// Command lrbench runs the repository's deterministic benchmark suites and
// gates performance regressions against committed baselines.
//
// Measure a suite and write its snapshot:
//
//	lrbench -suite verify -o BENCH_verify.json
//	lrbench -suite synth -o BENCH_synth.json -benchtime 200ms
//	lrbench -suite verify -smoke            # one iteration per metric, no -o
//
// Compare a fresh snapshot against a committed baseline:
//
//	lrbench -compare BENCH_verify.json new.json
//	lrbench -compare -threshold 0.25 BENCH_verify.json new.json
//
// Compare prints a worst-first ratio table and exits 0 when the geometric
// mean of the ns/op ratios is within the threshold, 1 when it regressed
// (strictly above 1+threshold), and 2 on usage or snapshot errors — so CI
// can fail a PR on the exit code alone. A metric present in only one
// snapshot, or carrying a zero/negative ns/op, is a broken comparison, not
// a warning: the gate would silently measure a different grid than the
// committed baseline describes, so lrbench prints one "error:" line per
// broken metric and exits 2. Regenerate the baseline when the grid
// legitimately changes. PERFORMANCE.md documents the workflow, the
// committed baselines, and how thresholds were chosen.
//
// Compare can also gate the opposite direction — demanding an improvement
// rather than bounding a regression:
//
//	lrbench -compare -group table1/global -min-speedup 1.5 old.json new.json
//
// -group restricts both snapshots to the metrics whose name starts with the
// prefix (so a frozen pre-optimization baseline stays usable after the rest
// of the grid grows rows), and -min-speedup exits 1 unless the group's
// geomean speedup (1/geomean ratio — for fixed-work rows, exactly the
// geomean states/sec improvement) reaches the given factor. A PR that
// claims a performance step-change commits its pre-change baseline and
// gates on it once; the gate is then dropped and the ordinary regression
// thresholds keep the win.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"paramring/internal/bench"
	"paramring/internal/cli"
)

func main() {
	defer cli.ExitOnPanic("lrbench")
	suite := flag.String("suite", "", "suite to run: verify | synth | fleet")
	out := flag.String("o", "", "write the snapshot JSON to this path (default: stdout)")
	benchtime := flag.Duration("benchtime", 100*time.Millisecond, "per-metric time budget")
	maxK := flag.Int("max-k", 12, "largest Table-1 global ring size (verify suite)")
	smoke := flag.Bool("smoke", false, "single iteration per metric (grid sanity check; not a comparable baseline)")
	compare := flag.Bool("compare", false, "compare two snapshots: lrbench -compare old.json new.json")
	threshold := flag.Float64("threshold", bench.DefaultThreshold, "geomean regression gate for -compare (0.10 = fail above a 10% mean slowdown)")
	group := flag.String("group", "", "for -compare: restrict both snapshots to metrics whose name starts with this prefix")
	minSpeedup := flag.Float64("min-speedup", 0, "for -compare: exit 1 unless the (group-filtered) geomean speedup over the baseline reaches this factor")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			cli.Exit("lrbench", 2, fmt.Errorf("-compare needs exactly two snapshot paths, got %d", flag.NArg()))
		}
		old, err := bench.ReadSnapshot(flag.Arg(0))
		if err != nil {
			cli.Exit("lrbench", 2, err)
		}
		cur, err := bench.ReadSnapshot(flag.Arg(1))
		if err != nil {
			cli.Exit("lrbench", 2, err)
		}
		if *group != "" {
			old = old.Filter(*group)
			cur = cur.Filter(*group)
			if len(old.Metrics) == 0 || len(cur.Metrics) == 0 {
				cli.Exit("lrbench", 2, fmt.Errorf(
					"-group %q matches %d baseline and %d new metric(s); nothing to gate",
					*group, len(old.Metrics), len(cur.Metrics)))
			}
		}
		c, err := bench.Compare(old, cur, *threshold)
		if err != nil {
			cli.Exit("lrbench", 2, err)
		}
		c.Format(os.Stdout)
		if len(c.Broken) > 0 {
			// The table above carries one "error:" line per broken metric.
			cli.Exit("lrbench", 2, fmt.Errorf(
				"comparison broken: %d metric(s) missing or non-positive; regenerate the baseline if the grid changed",
				len(c.Broken)))
		}
		if *minSpeedup > 0 {
			speedup := c.Speedup()
			verdict := "ok"
			if speedup < *minSpeedup {
				verdict = "BELOW TARGET"
			}
			fmt.Printf("speedup %.3fx (required %.2fx): %s\n", speedup, *minSpeedup, verdict)
			if speedup < *minSpeedup {
				os.Exit(1)
			}
		}
		if c.Regressed {
			os.Exit(1)
		}
		return
	}

	if *suite == "" {
		cli.Exit("lrbench", 2, fmt.Errorf("specify -suite %v or -compare old.json new.json", bench.Suites))
	}
	snap, err := bench.Run(*suite, bench.Config{Benchtime: *benchtime, MaxK: *maxK, Smoke: *smoke})
	if err != nil {
		cli.Exit("lrbench", 1, err)
	}
	for _, m := range snap.Metrics {
		fmt.Fprintf(os.Stderr, "%-48s %14.0f ns/op %10.0f allocs/op (n=%d)\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.N)
	}
	if *out == "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			cli.Exit("lrbench", 1, err)
		}
		fmt.Println(string(data))
		return
	}
	if err := snap.WriteFile(*out); err != nil {
		cli.Exit("lrbench", 1, err)
	}
	fmt.Fprintf(os.Stderr, "lrbench: wrote %s (%d metrics)\n", *out, len(snap.Metrics))
}
