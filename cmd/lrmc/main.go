// Command lrmc is the explicit-state global model checker: it instantiates
// a zoo protocol at a concrete ring size K and decides closure, deadlock-
// freedom, livelock-freedom and strong/weak convergence by exhaustive
// search — the global baseline the paper's local method replaces.
//
// Usage:
//
//	lrmc -protocol matchingA -k 7
//	lrmc -protocol agreement-both -k 4     # prints a livelock witness
//	lrmc -protocol token-ring -k 4 -m 4    # Dijkstra's ring (distinguished P0)
package main

import (
	"flag"
	"fmt"

	"paramring/internal/cli"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
	"paramring/internal/trace"
)

func main() {
	defer cli.ExitOnPanic("lrmc")
	name := flag.String("protocol", "", "protocol name (zoo name or token-ring)")
	file := flag.String("file", "", "guarded-commands file (.gc) to model check")
	k := flag.Int("k", 5, "ring size")
	m := flag.Int("m", 4, "token-ring domain size (token-ring only)")
	flag.Parse()

	var (
		in  *explicit.Instance
		err error
	)
	if *name == "token-ring" {
		follower, bottom := protocols.DijkstraTokenRing(*m)
		in, err = explicit.NewInstance(follower, *k,
			explicit.WithProcessActions(0, bottom),
			explicit.WithGlobalPredicate(protocols.TokenRingLegit))
	} else {
		p, perr := cli.LoadProtocol(*name, *file)
		if perr != nil {
			cli.Exit("lrmc", 2, perr)
		}
		in, err = explicit.NewInstance(p, *k)
	}
	if err != nil {
		cli.Exit("lrmc", 1, err)
	}

	fmt.Printf("%s on a ring of K=%d: %d global states\n", *name, *k, in.NumStates())

	if v := in.CheckClosure(); v != nil {
		fmt.Printf("closure: VIOLATED: %s -> %s by P%d/%s\n",
			in.Format(v.From), in.Format(v.To), v.Process, v.Action)
	} else {
		fmt.Println("closure: holds")
	}

	dl := in.IllegitimateDeadlocks()
	fmt.Printf("illegitimate deadlocks: %d\n", len(dl))
	for i, d := range dl {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(dl)-5)
			break
		}
		fmt.Printf("  %s\n", in.Format(d))
	}

	if cycle := in.FindLivelock(); cycle != nil {
		comp := trace.Computation{In: in, States: cycle}
		fmt.Printf("livelock: FOUND (length %d)\n  %s\n", len(cycle), comp.String())
	} else {
		fmt.Println("livelock: none")
	}

	rep := in.CheckStrongConvergence()
	fmt.Printf("strong convergence to I(K): %v (states explored: %d)\n", rep.Converges, rep.StatesExplored)
	weak, stuck := in.CheckWeakConvergence()
	fmt.Printf("weak convergence to I(K): %v", weak)
	if !weak {
		fmt.Printf(" (%d states cannot reach I)", len(stuck))
	}
	fmt.Println()
	if rep.Converges {
		max, mean, _ := in.RecoveryRadius()
		fmt.Printf("recovery radius: max %d steps, mean %.2f\n", max, mean)
	}
}
