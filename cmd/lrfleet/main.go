// Command lrfleet manages a fleet-scale spec corpus: ingest specs from
// files or a protogen sweep manifest, verify the whole corpus through the
// local-reasoning lanes with shared per-family memo state, and inspect the
// result.
//
// Usage:
//
//	lrfleet -corpus DIR -manifest sweep.json ingest     # ingest a generated sweep
//	lrfleet -corpus DIR ingest spec1.gc spec2.gc        # ingest spec files
//	lrfleet -corpus DIR verify                          # verify dirty entries
//	lrfleet -corpus DIR -force verify                   # verify everything
//	lrfleet -corpus DIR status                          # corpus summary
//
// Ingest dedups on the canonical rendering (formatting variants of one
// protocol share an entry), and an edit dirties the entry's transitive
// reverse-dependency closure, so a re-run of verify touches exactly the
// affected specs. Verify shares one compiled-spec cache and, per protocol
// family (shape), one skeleton LTG and one Theorem 5.14 verdict memo
// across all jobs — sharing never changes a verdict.
//
// Exit codes: 0 success (verify: every scheduled spec produced a verdict),
// 1 when any spec's verification errored, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"paramring/internal/cli"
	"paramring/internal/corpus"
	"paramring/internal/protogen"
	"paramring/internal/verify"
)

func main() {
	defer cli.ExitOnPanic("lrfleet")
	dir := flag.String("corpus", "", "corpus directory (required; created on first use)")
	manifest := flag.String("manifest", "", "protogen sweep manifest (JSON) to ingest")
	workers := flag.Int("workers", 0, "concurrent verification jobs; 0 selects GOMAXPROCS")
	force := flag.Bool("force", false, "verify every entry, clean or not")
	isolated := flag.Bool("isolated", false, "disable per-family memo sharing (comparison baseline)")
	invariant := flag.Bool("invariant", false, "also run the invariant-certificate lane per spec")
	crossValidate := flag.Int("cross-validate", 0, "cross-validate verdicts exhaustively up to this ring size (0 disables)")
	flag.Parse()

	if *dir == "" {
		cli.Exit("lrfleet", 2, fmt.Errorf("-corpus is required"))
	}
	if flag.NArg() < 1 {
		cli.Exit("lrfleet", 2, fmt.Errorf("usage: lrfleet -corpus DIR [flags] <ingest|verify|status> [files...]"))
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		cli.Exit("lrfleet", 2, err)
	}

	switch cmd := flag.Arg(0); cmd {
	case "ingest":
		files := flag.Args()[1:]
		if *manifest == "" && len(files) == 0 {
			cli.Exit("lrfleet", 2, fmt.Errorf("ingest needs -manifest and/or spec files"))
		}
		counts := map[corpus.Outcome]int{}
		if *manifest != "" {
			sw, err := protogen.LoadSweep(*manifest)
			if err != nil {
				cli.Exit("lrfleet", 2, err)
			}
			specs, err := sw.Specs()
			if err != nil {
				cli.Exit("lrfleet", 2, err)
			}
			for _, sp := range specs {
				if _, out, err := store.Ingest(sp.Name, sp.Source, sp.Deps...); err != nil {
					cli.Exit("lrfleet", 1, fmt.Errorf("sweep spec %s: %w", sp.Name, err))
				} else {
					counts[out]++
				}
			}
		}
		for _, path := range files {
			data, err := os.ReadFile(path)
			if err != nil {
				cli.Exit("lrfleet", 2, err)
			}
			// The file base name (without extension) names the entry, so an
			// edited file updates its own entry even if the protocol name
			// inside changed.
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			if _, out, err := store.Ingest(name, string(data)); err != nil {
				cli.Exit("lrfleet", 1, fmt.Errorf("%s: %w", path, err))
			} else {
				counts[out]++
			}
		}
		if err := store.Save(); err != nil {
			cli.Exit("lrfleet", 1, err)
		}
		fmt.Printf("ingested: %d added, %d updated, %d unchanged (%d entries, %d dirty)\n",
			counts[corpus.Added], counts[corpus.Updated], counts[corpus.Unchanged],
			store.Len(), len(store.Dirty()))

	case "verify":
		rep, err := store.VerifyAll(context.Background(), corpus.FleetOptions{
			Workers:  *workers,
			Force:    *force,
			Isolated: *isolated,
			Verify: verify.Options{
				Invariant:         *invariant,
				CrossValidateMaxK: *crossValidate,
			},
		})
		if err != nil {
			cli.Exit("lrfleet", 1, err)
		}
		if err := store.Save(); err != nil {
			cli.Exit("lrfleet", 1, err)
		}
		for _, r := range rep.Results {
			status := r.Verdict
			if r.Err != "" {
				status = "ERROR: " + r.Err
			} else if r.SelfStabilizing {
				status += " self-stabilizing"
			}
			fmt.Printf("  %-24s %s  %s\n", r.Name, r.ID, status)
		}
		hitRate := 0.0
		if total := rep.MemoHits + rep.MemoMisses; total > 0 {
			hitRate = float64(rep.MemoHits) / float64(total)
		}
		fmt.Printf("verified %d spec(s) in %d famil(ies), %d skipped clean, %d failed — %.1f specs/sec\n",
			rep.Scheduled, rep.Families, rep.Skipped, rep.Failed, rep.SpecsPerSec)
		fmt.Printf("shared memo: %d hit(s) / %d miss(es) (%.0f%% hit rate); spec cache: %d hit(s) / %d miss(es)\n",
			rep.MemoHits, rep.MemoMisses, 100*hitRate, rep.SpecCacheHits, rep.SpecCacheMisses)
		if rep.Failed > 0 {
			os.Exit(1)
		}

	case "status":
		entries := store.Entries()
		families := map[string]bool{}
		verified, dirty, stabilizing := 0, 0, 0
		for _, e := range entries {
			families[e.Family] = true
			if e.Verified {
				verified++
			}
			if e.Dirty || !e.Verified {
				dirty++
			}
			if e.SelfStabilizing {
				stabilizing++
			}
		}
		fmt.Printf("corpus %s: %d entries in %d famil(ies); %d verified (%d self-stabilizing), %d dirty\n",
			*dir, len(entries), len(families), verified, stabilizing, dirty)
		for _, e := range entries {
			state := "dirty"
			if e.Verified && !e.Dirty {
				state = e.Verdict
				if e.SelfStabilizing {
					state += " self-stabilizing"
				}
			}
			fmt.Printf("  %-24s %s  family=%s  %s\n", e.Name, e.ID, e.Family, state)
		}

	default:
		cli.Exit("lrfleet", 2, fmt.Errorf("unknown command %q (want ingest, verify, or status)", cmd))
	}
}
