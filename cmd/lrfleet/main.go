// Command lrfleet manages a fleet-scale spec corpus: ingest specs from
// files or a protogen sweep manifest, verify the whole corpus through the
// local-reasoning lanes with shared per-family memo state, and inspect the
// result.
//
// Usage:
//
//	lrfleet -corpus DIR -manifest sweep.json ingest     # ingest a generated sweep
//	lrfleet -corpus DIR ingest spec1.gc spec2.gc        # ingest spec files
//	lrfleet -corpus DIR verify                          # verify dirty entries
//	lrfleet -corpus DIR -force verify                   # verify everything
//	lrfleet -corpus DIR -server http://host:8420 verify # verify via lrserved
//	lrfleet -corpus DIR status                          # corpus summary
//
// With -server, verification is submitted to a running lrserved (or
// lrserved cluster coordinator) as batches instead of executing locally.
// The client cooperates with the server's backpressure: a 503 with
// Retry-After waits out the hint with capped, jittered exponential
// backoff before resubmitting, and Ctrl-C aborts the wait.
//
// Ingest dedups on the canonical rendering (formatting variants of one
// protocol share an entry), and an edit dirties the entry's transitive
// reverse-dependency closure, so a re-run of verify touches exactly the
// affected specs. Verify shares one compiled-spec cache and, per protocol
// family (shape), one skeleton LTG and one Theorem 5.14 verdict memo
// across all jobs — sharing never changes a verdict.
//
// Exit codes: 0 success (verify: every scheduled spec produced a verdict),
// 1 when any spec's verification errored, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"paramring/internal/cli"
	"paramring/internal/corpus"
	"paramring/internal/protogen"
	"paramring/internal/service"
	"paramring/internal/verify"
)

func main() {
	defer cli.ExitOnPanic("lrfleet")
	dir := flag.String("corpus", "", "corpus directory (required; created on first use)")
	manifest := flag.String("manifest", "", "protogen sweep manifest (JSON) to ingest")
	workers := flag.Int("workers", 0, "concurrent verification jobs; 0 selects GOMAXPROCS")
	force := flag.Bool("force", false, "verify every entry, clean or not")
	isolated := flag.Bool("isolated", false, "disable per-family memo sharing (comparison baseline)")
	invariant := flag.Bool("invariant", false, "also run the invariant-certificate lane per spec")
	crossValidate := flag.Int("cross-validate", 0, "cross-validate verdicts exhaustively up to this ring size (0 disables)")
	server := flag.String("server", "", "lrserved base URL; verify submits batches there instead of running locally")
	flag.Parse()

	if *dir == "" {
		cli.Exit("lrfleet", 2, fmt.Errorf("-corpus is required"))
	}
	if flag.NArg() < 1 {
		cli.Exit("lrfleet", 2, fmt.Errorf("usage: lrfleet -corpus DIR [flags] <ingest|verify|status> [files...]"))
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		cli.Exit("lrfleet", 2, err)
	}

	switch cmd := flag.Arg(0); cmd {
	case "ingest":
		files := flag.Args()[1:]
		if *manifest == "" && len(files) == 0 {
			cli.Exit("lrfleet", 2, fmt.Errorf("ingest needs -manifest and/or spec files"))
		}
		counts := map[corpus.Outcome]int{}
		if *manifest != "" {
			sw, err := protogen.LoadSweep(*manifest)
			if err != nil {
				cli.Exit("lrfleet", 2, err)
			}
			specs, err := sw.Specs()
			if err != nil {
				cli.Exit("lrfleet", 2, err)
			}
			for _, sp := range specs {
				if _, out, err := store.Ingest(sp.Name, sp.Source, sp.Deps...); err != nil {
					cli.Exit("lrfleet", 1, fmt.Errorf("sweep spec %s: %w", sp.Name, err))
				} else {
					counts[out]++
				}
			}
		}
		for _, path := range files {
			data, err := os.ReadFile(path)
			if err != nil {
				cli.Exit("lrfleet", 2, err)
			}
			// The file base name (without extension) names the entry, so an
			// edited file updates its own entry even if the protocol name
			// inside changed.
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			if _, out, err := store.Ingest(name, string(data)); err != nil {
				cli.Exit("lrfleet", 1, fmt.Errorf("%s: %w", path, err))
			} else {
				counts[out]++
			}
		}
		if err := store.Save(); err != nil {
			cli.Exit("lrfleet", 1, err)
		}
		fmt.Printf("ingested: %d added, %d updated, %d unchanged (%d entries, %d dirty)\n",
			counts[corpus.Added], counts[corpus.Updated], counts[corpus.Unchanged],
			store.Len(), len(store.Dirty()))

	case "verify":
		if *server != "" {
			serverVerify(store, *server, *force, corpus.FleetOptions{
				Verify: verify.Options{
					Invariant:         *invariant,
					CrossValidateMaxK: *crossValidate,
				},
			})
			return
		}
		rep, err := store.VerifyAll(context.Background(), corpus.FleetOptions{
			Workers:  *workers,
			Force:    *force,
			Isolated: *isolated,
			Verify: verify.Options{
				Invariant:         *invariant,
				CrossValidateMaxK: *crossValidate,
			},
		})
		if err != nil {
			cli.Exit("lrfleet", 1, err)
		}
		if err := store.Save(); err != nil {
			cli.Exit("lrfleet", 1, err)
		}
		for _, r := range rep.Results {
			status := r.Verdict
			if r.Err != "" {
				status = "ERROR: " + r.Err
			} else if r.SelfStabilizing {
				status += " self-stabilizing"
			}
			fmt.Printf("  %-24s %s  %s\n", r.Name, r.ID, status)
		}
		hitRate := 0.0
		if total := rep.MemoHits + rep.MemoMisses; total > 0 {
			hitRate = float64(rep.MemoHits) / float64(total)
		}
		fmt.Printf("verified %d spec(s) in %d famil(ies), %d skipped clean, %d failed — %.1f specs/sec\n",
			rep.Scheduled, rep.Families, rep.Skipped, rep.Failed, rep.SpecsPerSec)
		fmt.Printf("shared memo: %d hit(s) / %d miss(es) (%.0f%% hit rate); spec cache: %d hit(s) / %d miss(es)\n",
			rep.MemoHits, rep.MemoMisses, 100*hitRate, rep.SpecCacheHits, rep.SpecCacheMisses)
		if rep.Failed > 0 {
			os.Exit(1)
		}

	case "status":
		entries := store.Entries()
		families := map[string]bool{}
		verified, dirty, stabilizing := 0, 0, 0
		for _, e := range entries {
			families[e.Family] = true
			if e.Verified {
				verified++
			}
			if e.Dirty || !e.Verified {
				dirty++
			}
			if e.SelfStabilizing {
				stabilizing++
			}
		}
		fmt.Printf("corpus %s: %d entries in %d famil(ies); %d verified (%d self-stabilizing), %d dirty\n",
			*dir, len(entries), len(families), verified, stabilizing, dirty)
		for _, e := range entries {
			state := "dirty"
			if e.Verified && !e.Dirty {
				state = e.Verdict
				if e.SelfStabilizing {
					state += " self-stabilizing"
				}
			}
			fmt.Printf("  %-24s %s  family=%s  %s\n", e.Name, e.ID, e.Family, state)
		}

	default:
		cli.Exit("lrfleet", 2, fmt.Errorf("unknown command %q (want ingest, verify, or status)", cmd))
	}
}

// serverBatchSize bounds the specs per batch POST, comfortably under the
// service's own batch cap.
const serverBatchSize = 64

// serverVerify routes corpus verification through a running lrserved:
// scheduled entries are submitted as waiting batches, verdicts are folded
// back into the store, and backpressure 503s are retried with capped,
// jittered exponential backoff honoring the server's Retry-After hint.
func serverVerify(store *corpus.Store, baseURL string, force bool, opts corpus.FleetOptions) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var scheduled []corpus.Entry
	for _, e := range store.Entries() {
		if force || e.Dirty || !e.Verified {
			scheduled = append(scheduled, e)
		}
	}
	if len(scheduled) == 0 {
		fmt.Println("nothing to verify (corpus clean; use -force to re-verify)")
		return
	}

	client := &service.Client{BaseURL: strings.TrimRight(baseURL, "/")}
	reqOpts := service.RequestOptions{
		Invariant:         opts.Verify.Invariant,
		CrossValidateMaxK: opts.Verify.CrossValidateMaxK,
	}
	verified, failed := 0, 0
	start := time.Now()
	for lo := 0; lo < len(scheduled); lo += serverBatchSize {
		hi := lo + serverBatchSize
		if hi > len(scheduled) {
			hi = len(scheduled)
		}
		chunk := scheduled[lo:hi]
		specs := make([]string, len(chunk))
		for i, e := range chunk {
			specs[i] = e.Canonical
		}
		view, err := client.VerifyBatch(ctx, service.BatchRequest{
			Specs: specs, Options: reqOpts, Wait: true,
		})
		if err != nil {
			cli.Exit("lrfleet", 1, fmt.Errorf("batch submit: %w", err))
		}
		for _, item := range view.Items {
			e := chunk[item.Index]
			switch {
			case item.Error != "":
				failed++
				fmt.Printf("  %-24s %s  ERROR: %s\n", e.Name, e.ID, item.Error)
			case item.Result != nil:
				verdict := fmt.Sprintf("deadlock=%s livelock=%s",
					item.Result.Deadlock, item.Result.Livelock)
				store.RecordVerdict(e.Name, e.Canonical, verdict, item.Result.SelfStabilizing)
				verified++
				status := verdict
				if item.Result.SelfStabilizing {
					status += " self-stabilizing"
				}
				fmt.Printf("  %-24s %s  %s\n", e.Name, e.ID, status)
			default:
				failed++
				fmt.Printf("  %-24s %s  ERROR: no result (state %s)\n", e.Name, e.ID, item.State)
			}
		}
	}
	if err := store.Save(); err != nil {
		cli.Exit("lrfleet", 1, err)
	}
	secs := time.Since(start).Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(verified+failed) / secs
	}
	fmt.Printf("verified %d spec(s) via %s, %d failed — %.1f specs/sec\n",
		verified, baseURL, failed, rate)
	if failed > 0 {
		os.Exit(1)
	}
}
