// Command lrviz renders the RCG or LTG of a zoo protocol as Graphviz DOT,
// regenerating the paper's figures (Figure 1: -protocol matching -graph rcg;
// Figure 2: -protocol matchingA -graph rcg -deadlocks; Figure 4: -protocol
// matchingA -graph ltg; Figures 9-12: the unidirectional examples).
//
// Usage:
//
//	lrviz -protocol matching -graph rcg > fig1.dot && dot -Tpng fig1.dot
//	lrviz -protocol matchingB -graph rcg -deadlocks > fig3.dot
package main

import (
	"flag"
	"fmt"

	"paramring/internal/cli"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
	"paramring/internal/viz"
)

func main() {
	defer cli.ExitOnPanic("lrviz")
	name := flag.String("protocol", "", "protocol name")
	file := flag.String("file", "", "guarded-commands file (.gc) to render")
	graph := flag.String("graph", "ltg", "rcg or ltg")
	deadlocks := flag.Bool("deadlocks", false, "restrict to local deadlock states (Figures 2 and 3)")
	rankdir := flag.String("rankdir", "", "Graphviz rankdir (e.g. LR)")
	flag.Parse()

	p, err := cli.LoadProtocol(*name, *file)
	if err != nil {
		cli.Exit("lrviz", 2, err)
	}
	sys := p.Compile()
	opts := viz.Options{OnlyDeadlocks: *deadlocks, RankDir: *rankdir}
	switch *graph {
	case "rcg":
		fmt.Print(viz.RCGDOT(rcg.Build(sys), opts))
	case "ltg":
		fmt.Print(viz.LTGDOT(ltg.Build(sys), opts))
	default:
		cli.Exit("lrviz", 2, fmt.Errorf("unknown graph kind %q (want rcg or ltg)", *graph))
	}
}
