// Command lrexperiments regenerates every figure and evaluation claim of
// the paper "Local Reasoning for Global Convergence of Parameterized Rings"
// and reports paper-vs-measured agreement. Its output backs EXPERIMENTS.md.
//
// Usage:
//
//	lrexperiments             # run everything
//	lrexperiments -id F3      # run one experiment
//	lrexperiments -summary    # one line per experiment
//	lrexperiments -workers 4  # fan experiments out concurrently
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"

	"paramring/internal/cli"
	"paramring/internal/experiments"
)

func main() {
	defer cli.ExitOnPanic("lrexperiments")
	id := flag.String("id", "", "run a single experiment (F1..F12, T1..T4, X1..X8)")
	summary := flag.Bool("summary", false, "print only the one-line verdicts")
	paperOnly := flag.Bool("paper-only", false, "skip the extension experiments (X*)")
	workers := flag.Int("workers", 1,
		"run up to this many experiments concurrently, buffering output and printing in order (1 streams; note concurrent runs add timing noise to T1/T4)")
	maxStates := flag.Uint64("max-states", 0,
		"override the explicit-engine state-count guard for the state-space experiments (0 = per-experiment defaults; engine ceiling 1<<28)")
	synthWorkers := flag.Int("synth-workers", 1,
		"parallel workers for the synthesis searches inside the Section 6 experiments (results are identical for any count)")
	flag.Parse()

	if *synthWorkers < 1 {
		cli.Exit("lrexperiments", 2, fmt.Errorf("-synth-workers must be >= 1, got %d", *synthWorkers))
	}
	experiments.SetMaxStates(*maxStates)
	experiments.SetSynthesisWorkers(*synthWorkers)

	var list []experiments.Experiment
	switch {
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			cli.Exit("lrexperiments", 2, fmt.Errorf("unknown experiment %q", *id))
		}
		list = []experiments.Experiment{e}
	case *paperOnly:
		list = experiments.All()
	default:
		list = experiments.AllWithExtensions()
	}

	if !run(list, *summary, *workers) {
		os.Exit(1)
	}
}

// run executes the experiments — streaming when workers is 1, otherwise
// fanned out with per-experiment output buffers flushed in list order so
// the report reads identically at any concurrency level — and reports
// whether every experiment matched the paper.
func run(list []experiments.Experiment, summary bool, workers int) bool {
	type result struct {
		out  experiments.Outcome
		err  error
		body string
	}
	results := make([]result, len(list))
	if workers <= 1 {
		for i, e := range list {
			var detail io.Writer = io.Discard
			if !summary {
				detail = os.Stdout
				fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
			}
			out, err := e.Run(detail)
			results[i] = result{out: out, err: err}
			report(e, results[i].out, results[i].err, summary)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, e := range list {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, e experiments.Experiment) {
				defer wg.Done()
				defer func() { <-sem }()
				var buf bytes.Buffer
				var detail io.Writer = &buf
				if summary {
					detail = io.Discard
				}
				out, err := e.Run(detail)
				results[i] = result{out: out, err: err, body: buf.String()}
			}(i, e)
		}
		wg.Wait()
		for i, e := range list {
			if !summary {
				fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
				fmt.Print(results[i].body)
			}
			report(e, results[i].out, results[i].err, summary)
		}
	}
	allMatch := true
	for _, r := range results {
		if r.err != nil || !r.out.Match {
			allMatch = false
		}
	}
	return allMatch
}

// report prints one experiment's verdict in the selected format.
func report(e experiments.Experiment, out experiments.Outcome, err error, summary bool) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: error: %v\n", e.ID, err)
		return
	}
	if summary {
		fmt.Printf("%-4s match=%-5v %s\n", e.ID, out.Match, out.Measured)
		return
	}
	fmt.Printf("paper:    %s\nmeasured: %s\nmatch:    %v\n", e.Paper, out.Measured, out.Match)
	if out.Note != "" {
		fmt.Printf("note:     %s\n", out.Note)
	}
	fmt.Println()
}
