// Command lrexperiments regenerates every figure and evaluation claim of
// the paper "Local Reasoning for Global Convergence of Parameterized Rings"
// and reports paper-vs-measured agreement. Its output backs EXPERIMENTS.md.
//
// Usage:
//
//	lrexperiments             # run everything
//	lrexperiments -id F3      # run one experiment
//	lrexperiments -summary    # one line per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paramring/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run a single experiment (F1..F12, T1..T4, X1..X4)")
	summary := flag.Bool("summary", false, "print only the one-line verdicts")
	paperOnly := flag.Bool("paper-only", false, "skip the extension experiments (X*)")
	flag.Parse()

	var list []experiments.Experiment
	switch {
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "lrexperiments: unknown experiment %q\n", *id)
			os.Exit(2)
		}
		list = []experiments.Experiment{e}
	case *paperOnly:
		list = experiments.All()
	default:
		list = experiments.AllWithExtensions()
	}

	allMatch := true
	for _, e := range list {
		var detail io.Writer = os.Stdout
		if *summary {
			detail = io.Discard
		} else {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		}
		out, err := e.Run(detail)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", e.ID, err)
			allMatch = false
			continue
		}
		if *summary {
			fmt.Printf("%-4s match=%-5v %s\n", e.ID, out.Match, out.Measured)
		} else {
			fmt.Printf("paper:    %s\nmeasured: %s\nmatch:    %v\n", e.Paper, out.Measured, out.Match)
			if out.Note != "" {
				fmt.Printf("note:     %s\n", out.Note)
			}
			fmt.Println()
		}
		if !out.Match {
			allMatch = false
		}
	}
	if !allMatch {
		os.Exit(1)
	}
}
